//! CI perf-regression gate over `sweep_shards` reports.
//!
//! ```text
//! cargo run -p ctk-bench --release --bin compare_reports -- \
//!     --baseline results/sweep_shards_baseline.json \
//!     --current  results/sweep_shards.json \
//!     [--tolerance 0.30] [--absolute]
//! ```
//!
//! Joins the two reports on `(mode, queries, shards, batch, batching,
//! storage)` and
//! fails (exit 1) when any cell's throughput dropped by more than
//! `tolerance` (default 30%) versus the baseline. By default the compared metric is
//! the **normalized** throughput `docs_per_sec / single_docs_per_sec(queries)`
//! of each report — CI runners and developer machines differ wildly in
//! absolute speed, but each report carries its own single-threaded
//! reference measured in the same process on the same workload *per query
//! population*, so the ratio is the noise-tolerant signal: it regresses
//! only when the *sharded path itself* got slower relative to the engine.
//! `--absolute` switches to raw docs/sec (useful when baseline and current
//! come from the same machine).
//!
//! Reads schema v5 reports natively and still accepts v2, v3 and v4
//! baselines: a v2 report is treated as a v3 report with a single
//! query-population cell (`queries = num_queries`, one reference in
//! `singles`), a v3 report as a v4 report whose every cell ran `plain`
//! postings storage, and a v4 report as a v5 report whose every cell ran
//! `fixed` batching.
//!
//! Exit codes: `0` pass, `1` regression, `2` unusable input (missing file,
//! unrecognized schema version, or reports measured under different
//! workload configurations — those deltas would be meaningless).

use ctk_bench::report::format_sig;
use ctk_bench::SWEEP_SHARDS_SCHEMA_VERSION;
use serde::Deserialize;

#[derive(Deserialize)]
struct Probe {
    schema_version: u32,
}

#[derive(Deserialize)]
struct CellV2 {
    mode: String,
    shards: usize,
    batch: usize,
    docs_per_sec: f64,
}

#[derive(Deserialize)]
struct ReportV2 {
    num_queries: usize,
    measured_docs: usize,
    window: usize,
    single_docs_per_sec: f64,
    cells: Vec<CellV2>,
}

#[derive(Deserialize)]
struct Single {
    queries: usize,
    docs_per_sec: f64,
}

/// A v3 cell: no `storage` axis (every v3 cell ran plain storage).
#[derive(Deserialize)]
struct CellV3 {
    mode: String,
    queries: usize,
    shards: usize,
    batch: usize,
    docs_per_sec: f64,
}

#[derive(Deserialize)]
struct ReportV3 {
    query_counts: Vec<usize>,
    measured_docs: usize,
    window: usize,
    doc_pruning: String,
    singles: Vec<Single>,
    cells: Vec<CellV3>,
}

/// A v4 cell: no `batching` axis (every v4 cell ran fixed-window chunks).
#[derive(Deserialize)]
struct CellV4 {
    mode: String,
    queries: usize,
    shards: usize,
    batch: usize,
    storage: String,
    docs_per_sec: f64,
}

#[derive(Deserialize)]
struct ReportV4 {
    query_counts: Vec<usize>,
    measured_docs: usize,
    window: usize,
    doc_pruning: String,
    storage_modes: Vec<String>,
    singles: Vec<Single>,
    cells: Vec<CellV4>,
}

#[derive(Deserialize)]
struct Cell {
    mode: String,
    queries: usize,
    shards: usize,
    batch: usize,
    batching: String,
    storage: String,
    docs_per_sec: f64,
}

#[derive(Deserialize)]
struct Report {
    query_counts: Vec<usize>,
    measured_docs: usize,
    window: usize,
    doc_pruning: String,
    storage_modes: Vec<String>,
    singles: Vec<Single>,
    cells: Vec<Cell>,
}

impl Report {
    /// The single-threaded reference for a cell's query population.
    fn single(&self, queries: usize) -> Option<f64> {
        self.singles.iter().find(|s| s.queries == queries).map(|s| s.docs_per_sec)
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn usage_exit(msg: &str) -> ! {
    eprintln!("compare_reports: {msg}");
    eprintln!(
        "usage: compare_reports --baseline <report.json> --current <report.json> \
         [--tolerance 0.30] [--absolute]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Report {
    let contents = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage_exit(&format!("cannot read {path}: {e}")));
    let probe: Probe = serde_json::from_str(&contents)
        .unwrap_or_else(|e| usage_exit(&format!("{path} is not a sweep_shards report: {e}")));
    match probe.schema_version {
        2 => {
            // Migrate: a v2 report is a v3 report with one population
            // (whose cells, like every pre-v4 cell, ran plain storage).
            let v2: ReportV2 = serde_json::from_str(&contents)
                .unwrap_or_else(|e| usage_exit(&format!("{path} is not a v2 report: {e}")));
            Report {
                query_counts: vec![v2.num_queries],
                measured_docs: v2.measured_docs,
                window: v2.window,
                // v2 predates walk pruning: its doc cells always ran the
                // exhaustive walk.
                doc_pruning: "off".to_string(),
                storage_modes: vec!["plain".to_string()],
                singles: vec![Single {
                    queries: v2.num_queries,
                    docs_per_sec: v2.single_docs_per_sec,
                }],
                cells: v2
                    .cells
                    .into_iter()
                    .map(|c| Cell {
                        mode: c.mode,
                        queries: v2.num_queries,
                        shards: c.shards,
                        batch: c.batch,
                        batching: "fixed".to_string(),
                        storage: "plain".to_string(),
                        docs_per_sec: c.docs_per_sec,
                    })
                    .collect(),
            }
        }
        3 => {
            // Migrate: v3 predates the storage axis — plain everywhere.
            let v3: ReportV3 = serde_json::from_str(&contents)
                .unwrap_or_else(|e| usage_exit(&format!("{path} is not a v3 report: {e}")));
            Report {
                query_counts: v3.query_counts,
                measured_docs: v3.measured_docs,
                window: v3.window,
                doc_pruning: v3.doc_pruning,
                storage_modes: vec!["plain".to_string()],
                singles: v3.singles,
                cells: v3
                    .cells
                    .into_iter()
                    .map(|c| Cell {
                        mode: c.mode,
                        queries: c.queries,
                        shards: c.shards,
                        batch: c.batch,
                        batching: "fixed".to_string(),
                        storage: "plain".to_string(),
                        docs_per_sec: c.docs_per_sec,
                    })
                    .collect(),
            }
        }
        4 => {
            // Migrate: v4 predates the batching axis — fixed everywhere.
            let v4: ReportV4 = serde_json::from_str(&contents)
                .unwrap_or_else(|e| usage_exit(&format!("{path} is not a v4 report: {e}")));
            Report {
                query_counts: v4.query_counts,
                measured_docs: v4.measured_docs,
                window: v4.window,
                doc_pruning: v4.doc_pruning,
                storage_modes: v4.storage_modes,
                singles: v4.singles,
                cells: v4
                    .cells
                    .into_iter()
                    .map(|c| Cell {
                        mode: c.mode,
                        queries: c.queries,
                        shards: c.shards,
                        batch: c.batch,
                        batching: "fixed".to_string(),
                        storage: c.storage,
                        docs_per_sec: c.docs_per_sec,
                    })
                    .collect(),
            }
        }
        v if v == SWEEP_SHARDS_SCHEMA_VERSION => serde_json::from_str(&contents)
            .unwrap_or_else(|e| usage_exit(&format!("{path} is not a v{v} report: {e}"))),
        v => usage_exit(&format!(
            "{path} has schema_version {v} (this gate understands 2 through \
             {SWEEP_SHARDS_SCHEMA_VERSION}); regenerate it with the current sweep_shards binary"
        )),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path =
        arg_value(&args, "--baseline").unwrap_or_else(|| usage_exit("--baseline is required"));
    let current_path =
        arg_value(&args, "--current").unwrap_or_else(|| usage_exit("--current is required"));
    let tolerance: f64 = match arg_value(&args, "--tolerance") {
        None => 0.30,
        Some(s) => match s.parse() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => usage_exit("--tolerance must be a fraction in [0, 1)"),
        },
    };
    let absolute = args.iter().any(|a| a == "--absolute");

    let base = load(&baseline_path);
    let cur = load(&current_path);

    // Deltas are only meaningful at equal workload configuration — the
    // walk-pruning policy included: a pruned and an unpruned doc cell can
    // legitimately differ by >2× throughput, which must read as a config
    // mismatch, not a regression (or worse, mask one).
    let base_cfg = (
        &base.query_counts,
        base.measured_docs,
        base.window,
        &base.doc_pruning,
        &base.storage_modes,
    );
    let cur_cfg =
        (&cur.query_counts, cur.measured_docs, cur.window, &cur.doc_pruning, &cur.storage_modes);
    if base_cfg != cur_cfg {
        usage_exit(&format!(
            "workload configs differ: baseline (queries, docs, window, pruning, storage) = \
             {base_cfg:?}, current = {cur_cfg:?}; regenerate the baseline at the gate's \
             configuration"
        ));
    }

    let metric = |report: &Report, cell: &Cell| -> f64 {
        if absolute {
            cell.docs_per_sec
        } else {
            match report.single(cell.queries) {
                Some(single) => cell.docs_per_sec / single,
                None => usage_exit(&format!(
                    "report lacks a single-threaded reference for {} queries",
                    cell.queries
                )),
            }
        }
    };
    let metric_name = if absolute { "docs/sec" } else { "docs/sec vs single" };

    println!("### Perf gate: {metric_name}, tolerance -{:.0}%\n", tolerance * 100.0);
    println!(
        "| mode | queries | shards | batch | batching | storage | baseline | current | delta | \
         status |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");
    let mut regressions = 0usize;
    let mut missing = 0usize;
    let key = |c: &Cell| {
        (c.mode.clone(), c.queries, c.shards, c.batch, c.batching.clone(), c.storage.clone())
    };
    for bc in &base.cells {
        let Some(cc) = cur.cells.iter().find(|c| key(c) == key(bc)) else {
            println!(
                "| {} | {} | {} | {} | {} | {} | — | — | — | MISSING |",
                bc.mode, bc.queries, bc.shards, bc.batch, bc.batching, bc.storage
            );
            missing += 1;
            continue;
        };
        let (b, c) = (metric(&base, bc), metric(&cur, cc));
        let delta = c / b - 1.0;
        let regressed = delta < -tolerance;
        if regressed {
            regressions += 1;
        }
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {:+.1}% | {} |",
            bc.mode,
            bc.queries,
            bc.shards,
            bc.batch,
            bc.batching,
            bc.storage,
            format_sig(b),
            format_sig(c),
            delta * 100.0,
            if regressed { "REGRESSION" } else { "ok" }
        );
    }
    for cc in &cur.cells {
        let known = base.cells.iter().any(|b| key(b) == key(cc));
        if !known {
            println!(
                "| {} | {} | {} | {} | {} | {} | — | {} | — | new (no baseline) |",
                cc.mode,
                cc.queries,
                cc.shards,
                cc.batch,
                cc.batching,
                cc.storage,
                format_sig(metric(&cur, cc))
            );
        }
    }
    println!();

    if missing > 0 {
        eprintln!(
            "compare_reports: {missing} baseline cell(s) absent from the current report — \
             the gate cannot vouch for them; align the sweep configurations"
        );
        std::process::exit(2);
    }
    if regressions > 0 {
        eprintln!(
            "compare_reports: {regressions} cell(s) regressed more than {:.0}% on {metric_name}",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("compare_reports: all {} cells within tolerance", base.cells.len());
}
