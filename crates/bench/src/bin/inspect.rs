//! Work-counter inspection for one engine × workload cell (debug tool).
//!
//! ```text
//! cargo run -p ctk-bench --release --bin inspect -- MRIO 25000 connected
//! ```

use ctk_bench::{make_engine, prepare, run_engine, ExperimentConfig, Scale};
use ctk_stream::QueryWorkload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let algo = args.get(1).map(String::as_str).unwrap_or("MRIO");
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(25_000);
    let workload = match args.get(3).map(String::as_str) {
        Some("uniform") => QueryWorkload::Uniform,
        _ => QueryWorkload::Connected,
    };
    let cfg = ExperimentConfig::fig1(workload, n, Scale::Laptop);
    let wl = prepare(&cfg);
    let mut engine = make_engine(algo, cfg.lambda);
    let r = run_engine(engine.as_mut(), &wl);
    let e = r.stats.events as f64;
    println!("algo={algo} |Q|={n} workload={:?}", workload);
    println!("avg_ms            {:>12.4}", r.avg_ms);
    println!("setup_ms          {:>12.1}", r.setup_ms);
    println!("events            {:>12}", r.stats.events);
    println!("evals/event       {:>12.1}", r.stats.full_evaluations as f64 / e);
    println!("iters/event       {:>12.1}", r.stats.iterations as f64 / e);
    println!("postings/event    {:>12.1}", r.stats.postings_accessed as f64 / e);
    println!("bounds/event      {:>12.1}", r.stats.bound_computations as f64 / e);
    println!("updates/event     {:>12.2}", r.stats.updates as f64 / e);
    println!("matched/event     {:>12.1}", r.stats.matched_lists as f64 / e);
    println!("ns/iter           {:>12.1}", r.avg_ms * 1e6 / (r.stats.iterations as f64 / e));
}
