//! Ablation A1 — the three implementations of MRIO's zone maximum `UB*`
//! (TKDE §5.2): exact segment tree vs block maxima vs suffix snapshots,
//! against RIO as the no-zone baseline.
//!
//! ```text
//! cargo run -p ctk-bench --release --bin ablation_zonemax [-- --scale smoke|laptop]
//! ```

use ctk_bench::{make_engine, prepare, run_engine, write_csv, ExperimentConfig, Scale, Table};
use ctk_stream::QueryWorkload;

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Laptop);

    let variants = ["RIO", "MRIO", "MRIO-block", "MRIO-suffix"];
    for workload in [QueryWorkload::Uniform, QueryWorkload::Connected] {
        let mut time_tab = Table::new(
            &format!("A1 zone-max ablation — {} (time)", workload.name()),
            "queries",
            &variants,
            "ms/event",
        );
        let mut eval_tab = Table::new(
            &format!("A1 zone-max ablation — {} (evals)", workload.name()),
            "queries",
            &variants,
            "full evaluations/event",
        );
        for &n in &scale.query_counts() {
            let cfg = ExperimentConfig::fig1(workload, n, scale);
            let wl = prepare(&cfg);
            let mut times = Vec::new();
            let mut evals = Vec::new();
            for v in variants {
                let mut engine = make_engine(v, cfg.lambda);
                let r = run_engine(engine.as_mut(), &wl);
                eprintln!(
                    "  |Q|={n:>8} {v:<12} {:>9.4} ms/ev  {:>9.1} evals/ev",
                    r.avg_ms,
                    r.stats.avg_full_evaluations()
                );
                times.push(r.avg_ms);
                evals.push(r.stats.avg_full_evaluations());
            }
            time_tab.push_row(n.to_string(), times);
            eval_tab.push_row(n.to_string(), evals);
        }
        println!("{}", time_tab.to_markdown());
        println!("{}", eval_tab.to_markdown());
        let stem = format!("ablation_zonemax_{}", workload.name().to_lowercase());
        let _ = write_csv(&stem, &time_tab);
    }
}
