//! Ablation A2 — effect of the result size k on response time.
//!
//! ```text
//! cargo run -p ctk-bench --release --bin sweep_k [-- --scale smoke|laptop]
//! ```

use ctk_bench::{
    make_engine, prepare, run_engine, write_csv, ExperimentConfig, Scale, Table, PAPER_ALGOS,
};
use ctk_stream::QueryWorkload;

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Laptop);
    let n = scale.query_counts()[scale.query_counts().len() / 2];

    let mut table = Table::new("A2 — effect of k (Connected)", "k", &PAPER_ALGOS, "ms/event");
    for k in [1usize, 5, 10, 20, 50] {
        let mut cfg = ExperimentConfig::fig1(QueryWorkload::Connected, n, scale);
        cfg.workload.k = k;
        let wl = prepare(&cfg);
        let mut row = Vec::new();
        for algo in PAPER_ALGOS {
            let mut engine = make_engine(algo, cfg.lambda);
            let r = run_engine(engine.as_mut(), &wl);
            eprintln!("  k={k:<3} {algo:<9} {:>9.4} ms/ev", r.avg_ms);
            row.push(r.avg_ms);
        }
        table.push_row(k.to_string(), row);
    }
    println!("{}", table.to_markdown());
    let _ = write_csv("sweep_k", &table);
}
