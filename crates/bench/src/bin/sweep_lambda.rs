//! Ablation A3 — effect of the decay parameter λ: larger λ means looser
//! per-document targets (θ_d falls faster), more result churn, and less
//! pruning for every method.
//!
//! ```text
//! cargo run -p ctk-bench --release --bin sweep_lambda [-- --scale smoke|laptop]
//! ```

use ctk_bench::{
    make_engine, prepare, run_engine, write_csv, ExperimentConfig, Scale, Table, PAPER_ALGOS,
};
use ctk_stream::QueryWorkload;

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Laptop);
    let n = scale.query_counts()[scale.query_counts().len() / 2];

    let mut table =
        Table::new("A3 — effect of decay λ (Connected)", "lambda", &PAPER_ALGOS, "ms/event");
    for lambda in [0.0, 1e-5, 1e-4, 1e-3, 1e-2] {
        let mut cfg = ExperimentConfig::fig1(QueryWorkload::Connected, n, scale);
        cfg.lambda = lambda;
        let wl = prepare(&cfg);
        let mut row = Vec::new();
        for algo in PAPER_ALGOS {
            let mut engine = make_engine(algo, cfg.lambda);
            let r = run_engine(engine.as_mut(), &wl);
            eprintln!(
                "  λ={lambda:<8} {algo:<9} {:>9.4} ms/ev ({:.1} updates/ev)",
                r.avg_ms,
                r.stats.updates as f64 / r.stats.events.max(1) as f64
            );
            row.push(r.avg_ms);
        }
        table.push_row(format!("{lambda}"), row);
    }
    println!("{}", table.to_markdown());
    let _ = write_csv("sweep_lambda", &table);
}
