//! Experiment E4 — the paper's optimality claim (§III, Lemma 2): MRIO
//! performs the fewest full evaluations / iterations of any exact algorithm
//! in the ID-ordering paradigm. Reports "queries considered per stream
//! event" for every method next to the lower bound (the number of queries
//! whose result actually changes).
//!
//! ```text
//! cargo run -p ctk-bench --release --bin optimality [-- --scale smoke|laptop]
//! ```

use ctk_bench::{make_engine, prepare, run_engine, write_csv, ExperimentConfig, Scale, Table};
use ctk_stream::QueryWorkload;

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Laptop);
    let counts = scale.query_counts();
    let n = counts[counts.len() / 2];

    for workload in [QueryWorkload::Uniform, QueryWorkload::Connected] {
        let cfg = ExperimentConfig::fig1(workload, n, scale);
        let wl = prepare(&cfg);
        eprintln!("== optimality on {} / |Q| = {n} ==", workload.name());

        let algos = ["RTA", "TPS", "SortQuer", "RIO", "MRIO", "MRIO-block", "MRIO-suffix"];
        let mut table = Table::new(
            &format!("E4 optimality — {}", workload.name()),
            "metric",
            &algos,
            "per stream event",
        );
        let mut evals = Vec::new();
        let mut iters = Vec::new();
        let mut updates = Vec::new();
        for algo in algos {
            let mut engine = make_engine(algo, cfg.lambda);
            let r = run_engine(engine.as_mut(), &wl);
            eprintln!(
                "  {algo:<12} evals/ev={:>10.1} iters/ev={:>10.1}",
                r.stats.avg_full_evaluations(),
                r.stats.avg_iterations()
            );
            evals.push(r.stats.avg_full_evaluations());
            iters.push(r.stats.avg_iterations());
            updates.push(r.stats.updates as f64 / r.stats.events as f64);
        }
        let lower_bound = updates[0];
        table.push_row("queries considered (full evals)", evals.clone());
        table.push_row("traversal iterations", iters);
        table.push_row("result updates (lower bound)", updates);
        println!("{}", table.to_markdown());
        println!(
            "lower bound (queries whose top-k actually changes): {lower_bound:.1}/event; \
             MRIO considers {:.1} — within {:.1}% of optimal.\n",
            evals[4],
            (evals[4] / lower_bound - 1.0) * 100.0
        );
        let _ = write_csv(&format!("optimality_{}", workload.name().to_lowercase()), &table);
    }
}
