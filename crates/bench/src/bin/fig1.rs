//! Regenerates **Figure 1** of the paper: response time per stream event vs
//! number of registered queries, for RTA, RIO, MRIO, SortQuer and TPS, on
//! the Uniform (a) and Connected (b) query workloads.
//!
//! ```text
//! cargo run -p ctk-bench --release --bin fig1 [-- --scale smoke|laptop|full]
//!                                             [-- --workload uniform|connected|both]
//! ```
//!
//! Prints one markdown table per workload (rows = |Q|, columns = methods,
//! cells = mean ms/event) plus the paper's §IV speedup claim (MRIO vs TPS /
//! SortQuer / RTA), and writes `results/fig1_<workload>.{csv,json}`.

use ctk_bench::{
    make_engine, prepare, run_engine, write_csv, write_json, ExperimentConfig, RunResult, Scale,
    Table, PAPER_ALGOS,
};
use ctk_stream::QueryWorkload;

fn parse_args() -> (Scale, Vec<QueryWorkload>) {
    let mut scale = Scale::Laptop;
    let mut workloads = vec![QueryWorkload::Uniform, QueryWorkload::Connected];
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(&args[i]).unwrap_or_else(|| {
                    eprintln!("unknown scale {:?}; use smoke|laptop|full", args[i]);
                    std::process::exit(2);
                });
            }
            "--workload" => {
                i += 1;
                workloads = match args[i].as_str() {
                    "uniform" => vec![QueryWorkload::Uniform],
                    "connected" => vec![QueryWorkload::Connected],
                    "both" => vec![QueryWorkload::Uniform, QueryWorkload::Connected],
                    other => {
                        eprintln!("unknown workload {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    (scale, workloads)
}

fn main() {
    let (scale, workloads) = parse_args();
    let counts = scale.query_counts();

    for workload in workloads {
        let fig = match workload {
            QueryWorkload::Uniform => "Figure 1(a) — Wiki-Uniform",
            QueryWorkload::Connected => "Figure 1(b) — Wiki-Connected",
        };
        eprintln!("== {fig}: sweeping |Q| = {counts:?} (scale {scale:?}) ==");

        let mut table = Table::new(fig, "queries", &PAPER_ALGOS, "response time, ms/event");
        let mut all_results: Vec<RunResult> = Vec::new();

        for &n in &counts {
            let cfg = ExperimentConfig::fig1(workload, n, scale);
            let wl = prepare(&cfg);
            let mut row = Vec::with_capacity(PAPER_ALGOS.len());
            for algo in PAPER_ALGOS {
                let mut engine = make_engine(algo, cfg.lambda);
                let r = run_engine(engine.as_mut(), &wl);
                eprintln!(
                    "  |Q|={n:>8}  {algo:<9} avg={:>10.4} ms  p95={:>10.4} ms  evals/ev={:>9.1}",
                    r.avg_ms,
                    r.p95_ms,
                    r.stats.avg_full_evaluations()
                );
                row.push(r.avg_ms);
                all_results.push(r);
            }
            table.push_row(n.to_string(), row);
        }

        println!("{}", table.to_markdown());

        // The §IV claim: MRIO vs the best published competitors at the
        // largest sweep point.
        if let Some((_, last)) = table.rows.last() {
            let idx = |name: &str| PAPER_ALGOS.iter().position(|&a| a == name).unwrap();
            let mrio = last[idx("MRIO")];
            println!("**Speedups at |Q| = {} ({}):**\n", counts.last().unwrap(), workload.name());
            for other in ["TPS", "SortQuer", "RTA", "RIO"] {
                println!("- MRIO vs {other}: {:.1}x", last[idx(other)] / mrio);
            }
            println!();
        }

        let stem = format!("fig1_{}", workload.name().to_lowercase());
        match (write_csv(&stem, &table), write_json(&stem, &all_results)) {
            (Ok(c), Ok(j)) => eprintln!("wrote {} and {}", c.display(), j.display()),
            (c, j) => eprintln!("result files: {c:?} {j:?}"),
        }
    }
}
