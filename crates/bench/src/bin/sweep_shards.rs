//! Sharded-ingestion throughput: docs/sec as a function of **sharding
//! mode** × shard count × batch size, against two fixed references on the
//! *same* workload — the single-threaded engine and each mode's
//! per-document sharded path (batch size 1, the pre-batching design).
//!
//! ```text
//! cargo run -p ctk-bench --release --bin sweep_shards \
//!     [-- --scale smoke|laptop|full] [--mode query|doc|both] \
//!     [--shards 1,2,4] [--batches 1,64,256] [--window 1] [--docs N] \
//!     [--repeat N]
//! ```
//!
//! `--repeat N` (default 1) measures every cell — and the single-threaded
//! reference — N times from identical cold state (fresh monitor, same
//! registration/seed/warmup prologue) and keeps the best run. Transient
//! interference (CPU steal on shared CI runners, frequency ramps) only
//! ever *slows* a run, so best-of-N converges on the machine's true
//! throughput; the CI perf gate uses `--repeat 3` to keep its sub-second
//! smoke cells out of the noise floor.
//!
//! Prints a markdown table and writes the machine-readable report
//! (`schema_version` 2 — cells carry the `mode` axis) to
//! `results/sweep_shards.json`, which CI archives as a build artifact and
//! gates against `results/sweep_shards_baseline.json` with the
//! `compare_reports` binary. The writer refuses to clobber a report whose
//! schema version it does not recognize.
//!
//! Interpreting the numbers: batching removes the per-document channel
//! send + cross-shard merge, so `batch ≥ 64` vs `batch 1` shows the
//! coordination overhead; `shards > 1` vs the single engine additionally
//! needs physical cores to pay off — the report records the machine's
//! available parallelism so a 1-core CI runner is not mistaken for a
//! scaling regression. The `--mode` axis exposes the query-vs-doc
//! crossover: query sharding pays the matched-list walk once per shard
//! (wins at large query populations), document sharding pays it once in
//! total (wins at small populations / high stream rates).

use ctk_bench::report::format_sig;
use ctk_bench::{
    existing_report_schema, make_sharded, prepare, write_json_report, ExperimentConfig, Scale,
    Table, SWEEP_SHARDS_SCHEMA_VERSION,
};
use ctk_core::{ContinuousTopK, MrioSeg, ShardingMode};
use ctk_stream::QueryWorkload;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Cell {
    mode: String,
    shards: usize,
    batch: usize,
    docs_per_sec: f64,
    speedup_vs_single: f64,
    speedup_vs_per_doc_sharded: f64,
}

#[derive(Serialize)]
struct SweepReport {
    schema_version: u32,
    engine: String,
    scale: String,
    num_queries: usize,
    measured_docs: usize,
    window: usize,
    available_parallelism: usize,
    single_docs_per_sec: f64,
    cells: Vec<Cell>,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',').filter_map(|p| p.trim().parse().ok()).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale").and_then(|s| Scale::parse(&s)).unwrap_or(Scale::Laptop);
    let modes: Vec<ShardingMode> = match arg_value(&args, "--mode").as_deref() {
        None | Some("both") => ShardingMode::ALL.to_vec(),
        Some(s) => match s.parse() {
            Ok(mode) => vec![mode],
            Err(e) => {
                eprintln!("sweep_shards: {e} (or 'both')");
                std::process::exit(2);
            }
        },
    };
    let shard_counts =
        arg_value(&args, "--shards").map(|s| parse_list(&s)).unwrap_or_else(|| vec![1, 2, 4]);
    let batch_sizes =
        arg_value(&args, "--batches").map(|s| parse_list(&s)).unwrap_or_else(|| vec![1, 64, 256]);
    let window: usize = arg_value(&args, "--window").and_then(|s| s.parse().ok()).unwrap_or(1);
    let repeat: usize =
        arg_value(&args, "--repeat").and_then(|s| s.parse().ok()).unwrap_or(1).max(1);
    let measured_docs: usize =
        arg_value(&args, "--docs").and_then(|s| s.parse().ok()).unwrap_or(match scale {
            Scale::Smoke => 2_000,
            Scale::Laptop => 8_000,
            Scale::Full => 20_000,
        });

    // Never clobber a report written in a format this binary does not
    // understand (e.g. by a newer checkout) — regeneration must be a
    // conscious `rm`, not a silent downgrade.
    match existing_report_schema("sweep_shards") {
        Ok(Some(v)) if v != 1 && v != SWEEP_SHARDS_SCHEMA_VERSION => {
            eprintln!(
                "sweep_shards: refusing to overwrite results/sweep_shards.json: \
                 its schema_version {v} is unknown to this binary \
                 (understands 1 and {SWEEP_SHARDS_SCHEMA_VERSION}); delete it to regenerate"
            );
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("sweep_shards: cannot inspect existing report: {e}");
            std::process::exit(2);
        }
        _ => {}
    }

    let n = scale.query_counts()[scale.query_counts().len() / 2];
    let mut cfg = ExperimentConfig::fig1(QueryWorkload::Connected, n, scale);
    cfg.measured_events = measured_docs;
    let wl = prepare(&cfg);
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    eprintln!(
        "sweep_shards: {n} queries, {} measured docs, window {window}, {cores} core(s)",
        wl.measured.len()
    );
    if cores < shard_counts.iter().copied().max().unwrap_or(1) {
        eprintln!(
            "  note: fewer cores than shards — sharding cannot beat the single engine here; \
             compare batch sizes (coordination overhead) instead"
        );
    }

    // Best-of-N from identical cold state: interference only slows runs,
    // so the fastest repetition is the least-perturbed estimate.
    let best_of = |measure: &dyn Fn() -> f64| (0..repeat).map(|_| measure()).fold(0.0, f64::max);

    // Reference 1: the single-threaded engine.
    let single_dps = best_of(&|| {
        let mut engine = MrioSeg::new(cfg.lambda);
        wl.install(&mut engine);
        for doc in &wl.warmup {
            engine.process(doc);
        }
        let start = Instant::now();
        for doc in &wl.measured {
            engine.process(doc);
        }
        wl.measured.len() as f64 / start.elapsed().as_secs_f64()
    });
    eprintln!("  single-threaded MRIO: {} docs/sec (best of {repeat})", format_sig(single_dps));

    let mut table = Table::new(
        "Sharded ingestion throughput (MRIO single reference)",
        "mode x shards x batch",
        &["docs/sec", "vs single", "vs per-doc sharded"],
        "docs/sec",
    );
    let mut cells = Vec::new();
    for &mode in &modes {
        for &shards in &shard_counts {
            // Reference 2: this mode × shard count fed one document at a
            // time through the blocking `process` call — the
            // one-doc-one-barrier design. Always swept first (as the
            // batch-1 cell, without pipelining) and exactly once, whatever
            // --batches says.
            let mut batches = vec![1usize];
            for &b in &batch_sizes {
                if b > 1 && !batches.contains(&b) {
                    batches.push(b);
                }
            }
            let mut per_doc_dps = f64::NAN;
            for &batch in &batches {
                let dps = best_of(&|| {
                    let mut monitor = make_sharded(mode, shards, "MRIO", cfg.lambda);
                    let mut ids = Vec::with_capacity(wl.specs.len());
                    for spec in &wl.specs {
                        ids.push(monitor.register(spec.clone()));
                    }
                    for (i, seeds) in wl.seeds.iter().enumerate() {
                        if !seeds.is_empty() {
                            monitor.seed_results(ids[i], seeds);
                        }
                    }
                    for chunk in wl.warmup.chunks(batch.max(1)) {
                        monitor.process_batch(chunk.to_vec());
                    }

                    let start = Instant::now();
                    if batch == 1 {
                        // The per-document reference must pay the historical
                        // cost: one blocking dispatch + merge per document.
                        for doc in &wl.measured {
                            monitor.process(doc.clone());
                        }
                    } else {
                        monitor.run_pipelined(
                            wl.measured.chunks(batch).map(<[_]>::to_vec),
                            window,
                            |_, _| {},
                        );
                    }
                    wl.measured.len() as f64 / start.elapsed().as_secs_f64()
                });
                if batch == 1 {
                    per_doc_dps = dps;
                }
                let vs_per_doc = dps / per_doc_dps;
                eprintln!(
                    "  mode={mode} shards={shards} batch={batch}: {} docs/sec \
                     ({:.2}x single, {:.2}x per-doc)",
                    format_sig(dps),
                    dps / single_dps,
                    vs_per_doc
                );
                table.push_row(
                    format!("{mode} x {shards} x {batch}"),
                    vec![dps, dps / single_dps, vs_per_doc],
                );
                cells.push(Cell {
                    mode: mode.name().to_string(),
                    shards,
                    batch,
                    docs_per_sec: dps,
                    speedup_vs_single: dps / single_dps,
                    speedup_vs_per_doc_sharded: vs_per_doc,
                });
            }
        }
    }

    println!("{}", table.to_markdown());
    let report = SweepReport {
        schema_version: SWEEP_SHARDS_SCHEMA_VERSION,
        engine: "MRIO".to_string(),
        scale: format!("{scale:?}"),
        num_queries: n,
        measured_docs: wl.measured.len(),
        window,
        available_parallelism: cores,
        single_docs_per_sec: single_dps,
        cells,
    };
    match write_json_report("sweep_shards", &report) {
        Ok(path) => eprintln!("  wrote {}", path.display()),
        Err(e) => eprintln!("  failed to write JSON report: {e}"),
    }
}
