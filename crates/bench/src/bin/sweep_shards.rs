//! Sharded-ingestion throughput: docs/sec as a function of **query
//! population** × **sharding mode** × shard count × batch size, against two
//! fixed references on the *same* workload — the single-threaded engine
//! (measured per population) and each mode's per-document sharded path
//! (batch size 1, the pre-batching design).
//!
//! ```text
//! cargo run -p ctk-bench --release --bin sweep_shards \
//!     [-- --scale smoke|laptop|full] [--mode query|doc|both] \
//!     [--queries 2000,10000] [--shards 1,2,4] [--batches 1,64,256] \
//!     [--window 1] [--docs N] [--repeat N] [--pruning off|on|auto] \
//!     [--storage plain,compressed,paged] [--page-budget BYTES] \
//!     [--adaptive [target_ms]]
//! ```
//!
//! `--queries N[,N...]` sweeps the query population (default: the scale's
//! midpoint count, the pre-v3 behavior). This is the axis that exposes the
//! query-vs-doc **crossover**: query sharding pays the matched-list walk
//! once per shard (wins at large populations), document sharding pays it
//! once in total (wins at small populations / high stream rates) — and
//! doc-mode walk pruning (`--pruning`, default `auto`) moves the crossover
//! by skipping zones of the shared epoch that cannot produce an offer. Each
//! doc-mode cell records its cumulative `zones_skipped`/`postings_skipped`,
//! so the report shows not just *that* large-population doc cells hold up
//! but *why*.
//!
//! `--repeat N` (default 1) measures every cell — and the single-threaded
//! references — N times from identical cold state (fresh monitor, same
//! registration/seed/warmup prologue) and keeps the best run. Transient
//! interference (CPU steal on shared CI runners, frequency ramps) only
//! ever *slows* a run, so best-of-N converges on the machine's true
//! throughput; the CI perf gate uses `--repeat 3` to keep its sub-second
//! smoke cells out of the noise floor.
//!
//! `--storage B[,B...]` sweeps the postings-storage backend (default
//! `plain`); each cell records the backend's `index_bytes` (summed across
//! shards after the measured stream) and the derived `bytes_per_query`, so
//! the report shows the compression ratio next to the throughput cost.
//! `--page-budget BYTES` caps the pager's RAM for `paged` cells (0 = the
//! library default).
//!
//! `--adaptive [target_ms]` adds one **adaptive-batching** cell per
//! `queries × storage × mode × shards` point: the whole measured stream is
//! handed to `publish_batch` in one call and the AIMD controller picks the
//! chunk size against the given drain-latency target (default
//! `AdaptiveConfig`'s). Such cells report `batching: "adaptive"` and
//! `batch: 0` — the controller, not a flag, chooses the chunk — so the
//! fixed-window cells they ride next to are directly comparable.
//!
//! Prints a markdown table and writes the machine-readable report
//! (`schema_version` 5 — cells carry the `queries`, `storage` and
//! `batching` axes, skip counters and memory footprint)
//! to `results/sweep_shards.json`, which CI archives as a build artifact
//! and gates against `results/sweep_shards_baseline.json` with the
//! `compare_reports` binary. The writer refuses to clobber a report whose
//! schema version it does not recognize.

use ctk_bench::report::format_sig;
use ctk_bench::{
    existing_report_schema, make_sharded_with, prepare, write_json_report, ExperimentConfig, Scale,
    Table, SWEEP_SHARDS_SCHEMA_VERSION,
};
use ctk_core::{
    AdaptiveConfig, ContinuousTopK, DocPruning, MrioSeg, PostingsStorage, ShardingMode,
    StorageConfig,
};
use ctk_stream::QueryWorkload;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Single {
    queries: usize,
    docs_per_sec: f64,
}

#[derive(Serialize)]
struct Cell {
    mode: String,
    queries: usize,
    shards: usize,
    /// Fixed chunk size for `batching: "fixed"` cells; 0 for adaptive
    /// cells, whose chunk the AIMD controller chooses at runtime.
    batch: usize,
    /// `"fixed"` (chunk size = `batch`) or `"adaptive"` (AIMD-controlled).
    batching: String,
    /// Postings-storage backend this cell ran on (`plain` / `compressed` /
    /// `paged`).
    storage: String,
    docs_per_sec: f64,
    speedup_vs_single: f64,
    speedup_vs_per_doc_sharded: f64,
    /// Doc-mode bounded-walk work skipped over the measured stream (0 for
    /// query mode and for unpruned doc cells).
    zones_skipped: u64,
    postings_skipped: u64,
    /// Estimated index heap bytes after the measured stream, summed across
    /// shards (paged cells exclude spilled payloads).
    index_bytes: u64,
    bytes_per_query: f64,
}

#[derive(Serialize)]
struct SweepReport {
    schema_version: u32,
    engine: String,
    scale: String,
    query_counts: Vec<usize>,
    measured_docs: usize,
    window: usize,
    doc_pruning: String,
    /// Postings-storage backends swept, cell order.
    storage_modes: Vec<String>,
    /// Pager RAM budget for `paged` cells (0 = the library default).
    page_budget: usize,
    available_parallelism: usize,
    /// Single-threaded reference per query population, `query_counts` order.
    singles: Vec<Single>,
    cells: Vec<Cell>,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',').filter_map(|p| p.trim().parse().ok()).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale").and_then(|s| Scale::parse(&s)).unwrap_or(Scale::Laptop);
    let modes: Vec<ShardingMode> = match arg_value(&args, "--mode").as_deref() {
        None | Some("both") => ShardingMode::ALL.to_vec(),
        Some(s) => match s.parse() {
            Ok(mode) => vec![mode],
            Err(e) => {
                eprintln!("sweep_shards: {e} (or 'both')");
                std::process::exit(2);
            }
        },
    };
    let query_counts: Vec<usize> = arg_value(&args, "--queries")
        .map(|s| parse_list(&s))
        .unwrap_or_else(|| vec![scale.query_counts()[scale.query_counts().len() / 2]]);
    let shard_counts =
        arg_value(&args, "--shards").map(|s| parse_list(&s)).unwrap_or_else(|| vec![1, 2, 4]);
    let batch_sizes =
        arg_value(&args, "--batches").map(|s| parse_list(&s)).unwrap_or_else(|| vec![1, 64, 256]);
    let window: usize = arg_value(&args, "--window").and_then(|s| s.parse().ok()).unwrap_or(1);
    let repeat: usize =
        arg_value(&args, "--repeat").and_then(|s| s.parse().ok()).unwrap_or(1).max(1);
    let pruning: DocPruning = match arg_value(&args, "--pruning") {
        None => DocPruning::Auto,
        Some(s) => match s.parse() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("sweep_shards: {e}");
                std::process::exit(2);
            }
        },
    };
    let storages: Vec<PostingsStorage> = match arg_value(&args, "--storage") {
        None => vec![PostingsStorage::Plain],
        Some(s) => match s.split(',').map(|p| p.trim().parse()).collect() {
            Ok(list) => list,
            Err(e) => {
                eprintln!("sweep_shards: {e}");
                std::process::exit(2);
            }
        },
    };
    let page_budget: usize =
        arg_value(&args, "--page-budget").and_then(|s| s.parse().ok()).unwrap_or(0);
    let adaptive: Option<AdaptiveConfig> = if args.iter().any(|a| a == "--adaptive") {
        let mut acfg = AdaptiveConfig::default();
        // The drain-latency target is optional: `--adaptive` alone takes
        // the library default.
        if let Some(raw) = arg_value(&args, "--adaptive").filter(|v| !v.starts_with("--")) {
            match raw.parse() {
                Ok(target) => acfg = acfg.target_drain_ms(target),
                Err(_) => {
                    eprintln!("sweep_shards: bad value {raw:?} for --adaptive");
                    std::process::exit(2);
                }
            }
        }
        Some(acfg)
    } else {
        None
    };
    let measured_docs: usize =
        arg_value(&args, "--docs").and_then(|s| s.parse().ok()).unwrap_or(match scale {
            Scale::Smoke => 2_000,
            Scale::Laptop => 8_000,
            Scale::Full => 20_000,
        });
    if query_counts.is_empty() {
        eprintln!("sweep_shards: --queries needs at least one population");
        std::process::exit(2);
    }

    // Never clobber a report written in a format this binary does not
    // understand (e.g. by a newer checkout) — regeneration must be a
    // conscious `rm`, not a silent downgrade.
    match existing_report_schema("sweep_shards") {
        Ok(Some(v)) if !(1..=SWEEP_SHARDS_SCHEMA_VERSION).contains(&v) => {
            eprintln!(
                "sweep_shards: refusing to overwrite results/sweep_shards.json: \
                 its schema_version {v} is unknown to this binary \
                 (understands 1 through {SWEEP_SHARDS_SCHEMA_VERSION}); delete it to regenerate"
            );
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("sweep_shards: cannot inspect existing report: {e}");
            std::process::exit(2);
        }
        _ => {}
    }

    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    if cores < shard_counts.iter().copied().max().unwrap_or(1) {
        eprintln!(
            "  note: fewer cores than shards — sharding cannot beat the single engine here; \
             compare batch sizes (coordination overhead) instead"
        );
    }

    // Best-of-N from identical cold state: interference only slows runs,
    // so the fastest repetition is the least-perturbed estimate. `measure`
    // returns (docs/sec, skip counters, index bytes); the counters are
    // deterministic across repeats, so folding by throughput keeps a
    // matching tuple.
    let best_of = |measure: &dyn Fn() -> (f64, u64, u64, u64)| {
        (0..repeat).map(|_| measure()).fold((0.0f64, 0u64, 0u64, 0u64), |best, run| {
            if run.0 > best.0 {
                run
            } else {
                best
            }
        })
    };

    let mut table = Table::new(
        "Sharded ingestion throughput (MRIO single reference)",
        "queries x storage x mode x shards x batch",
        &["docs/sec", "vs single", "vs per-doc sharded", "zones skipped", "bytes/query"],
        "docs/sec",
    );
    let mut singles = Vec::new();
    let mut cells = Vec::new();
    for &n in &query_counts {
        let mut cfg = ExperimentConfig::fig1(QueryWorkload::Connected, n, scale);
        cfg.measured_events = measured_docs;
        let wl = prepare(&cfg);
        eprintln!(
            "sweep_shards: {n} queries, {} measured docs, window {window}, {cores} core(s), \
             pruning {pruning}",
            wl.measured.len()
        );

        // Reference 1: the single-threaded engine at this population
        // (always plain storage — the sharded cells normalize against it).
        let (single_dps, _, _, _) = best_of(&|| {
            let mut engine = MrioSeg::new(cfg.lambda);
            wl.install(&mut engine);
            for doc in &wl.warmup {
                engine.process(doc);
            }
            let start = Instant::now();
            for doc in &wl.measured {
                engine.process(doc);
            }
            (wl.measured.len() as f64 / start.elapsed().as_secs_f64(), 0, 0, 0)
        });
        eprintln!("  single-threaded MRIO: {} docs/sec (best of {repeat})", format_sig(single_dps));
        singles.push(Single { queries: n, docs_per_sec: single_dps });

        for &storage in &storages {
            let storage_cfg =
                StorageConfig { storage, page_budget_bytes: page_budget, spill_dir: None };
            for &mode in &modes {
                for &shards in &shard_counts {
                    // Reference 2: this mode × shard count fed one document at
                    // a time through the blocking `process` call — the
                    // one-doc-one-barrier design. Always swept first (as the
                    // batch-1 cell, without pipelining) and exactly once,
                    // whatever --batches says.
                    let mut batches = vec![1usize];
                    for &b in &batch_sizes {
                        if b > 1 && !batches.contains(&b) {
                            batches.push(b);
                        }
                    }
                    let mut per_doc_dps = f64::NAN;
                    for &batch in &batches {
                        let (dps, zones, postings, index_bytes) = best_of(&|| {
                            let mut monitor = make_sharded_with(
                                mode,
                                shards,
                                "MRIO",
                                cfg.lambda,
                                pruning,
                                &storage_cfg,
                            );
                            let mut ids = Vec::with_capacity(wl.specs.len());
                            for spec in &wl.specs {
                                ids.push(monitor.register(spec.clone()));
                            }
                            for (i, seeds) in wl.seeds.iter().enumerate() {
                                if !seeds.is_empty() {
                                    monitor.seed_results(ids[i], seeds);
                                }
                            }
                            for chunk in wl.warmup.chunks(batch.max(1)) {
                                monitor.process_batch(chunk.to_vec());
                            }
                            let warm_skips: Vec<(u64, u64)> = monitor
                                .shard_cumulative()
                                .iter()
                                .map(|c| (c.zones_skipped, c.postings_skipped))
                                .collect();

                            let start = Instant::now();
                            if batch == 1 {
                                // The per-document reference must pay the
                                // historical cost: one blocking dispatch +
                                // merge per document.
                                for doc in &wl.measured {
                                    monitor.process(doc.clone());
                                }
                            } else {
                                monitor.run_pipelined(
                                    wl.measured.chunks(batch).map(<[_]>::to_vec),
                                    window,
                                    |_, _| {},
                                );
                            }
                            let dps = wl.measured.len() as f64 / start.elapsed().as_secs_f64();
                            let (wz, wp) = warm_skips
                                .iter()
                                .fold((0u64, 0u64), |(z, p), &(az, ap)| (z + az, p + ap));
                            let (tz, tp) = monitor
                                .shard_cumulative()
                                .iter()
                                .fold((0u64, 0u64), |(z, p), c| {
                                    (z + c.zones_skipped, p + c.postings_skipped)
                                });
                            let index_bytes = monitor.storage_stats().index_bytes;
                            (dps, tz - wz, tp - wp, index_bytes)
                        });
                        if batch == 1 {
                            per_doc_dps = dps;
                        }
                        let vs_per_doc = dps / per_doc_dps;
                        let bytes_per_query = index_bytes as f64 / n as f64;
                        eprintln!(
                            "  queries={n} storage={storage} mode={mode} shards={shards} \
                         batch={batch}: {} docs/sec ({:.2}x single, {:.2}x per-doc, \
                         {zones} zones skipped, {} bytes/query)",
                            format_sig(dps),
                            dps / single_dps,
                            vs_per_doc,
                            format_sig(bytes_per_query)
                        );
                        table.push_row(
                            format!("{n} x {storage} x {mode} x {shards} x {batch}"),
                            vec![dps, dps / single_dps, vs_per_doc, zones as f64, bytes_per_query],
                        );
                        cells.push(Cell {
                            mode: mode.name().to_string(),
                            queries: n,
                            shards,
                            batch,
                            batching: "fixed".to_string(),
                            storage: storage.name().to_string(),
                            docs_per_sec: dps,
                            speedup_vs_single: dps / single_dps,
                            speedup_vs_per_doc_sharded: vs_per_doc,
                            zones_skipped: zones,
                            postings_skipped: postings,
                            index_bytes,
                            bytes_per_query,
                        });
                    }

                    // The adaptive cell: hand the whole measured stream to
                    // `publish_batch` and let the AIMD controller choose the
                    // chunk size against its drain-latency target. The raw
                    // (terms, arrival) batch is prepared outside the timed
                    // section; ids continue past the warmup's.
                    if let Some(acfg) = adaptive {
                        let raw: Vec<(Vec<_>, f64)> = wl
                            .measured
                            .iter()
                            .map(|d| (d.vector.iter().collect(), d.arrival))
                            .collect();
                        let (dps, zones, postings, index_bytes) = best_of(&|| {
                            let mut monitor = make_sharded_with(
                                mode,
                                shards,
                                "MRIO",
                                cfg.lambda,
                                pruning,
                                &storage_cfg,
                            );
                            let mut ids = Vec::with_capacity(wl.specs.len());
                            for spec in &wl.specs {
                                ids.push(monitor.register(spec.clone()));
                            }
                            for (i, seeds) in wl.seeds.iter().enumerate() {
                                if !seeds.is_empty() {
                                    monitor.seed_results(ids[i], seeds);
                                }
                            }
                            for chunk in wl.warmup.chunks(256) {
                                monitor.process_batch(chunk.to_vec());
                            }
                            let warm_skips: Vec<(u64, u64)> = monitor
                                .shard_cumulative()
                                .iter()
                                .map(|c| (c.zones_skipped, c.postings_skipped))
                                .collect();
                            monitor.set_adaptive_batching(acfg);
                            let batch = raw.clone();

                            let start = Instant::now();
                            monitor.publish_batch(batch);
                            let dps = wl.measured.len() as f64 / start.elapsed().as_secs_f64();
                            let (wz, wp) = warm_skips
                                .iter()
                                .fold((0u64, 0u64), |(z, p), &(az, ap)| (z + az, p + ap));
                            let (tz, tp) = monitor
                                .shard_cumulative()
                                .iter()
                                .fold((0u64, 0u64), |(z, p), c| {
                                    (z + c.zones_skipped, p + c.postings_skipped)
                                });
                            let index_bytes = monitor.storage_stats().index_bytes;
                            (dps, tz - wz, tp - wp, index_bytes)
                        });
                        let bytes_per_query = index_bytes as f64 / n as f64;
                        eprintln!(
                            "  queries={n} storage={storage} mode={mode} shards={shards} \
                         batch=adaptive: {} docs/sec ({:.2}x single, {:.2}x per-doc, \
                         {zones} zones skipped, {} bytes/query)",
                            format_sig(dps),
                            dps / single_dps,
                            dps / per_doc_dps,
                            format_sig(bytes_per_query)
                        );
                        table.push_row(
                            format!("{n} x {storage} x {mode} x {shards} x adaptive"),
                            vec![
                                dps,
                                dps / single_dps,
                                dps / per_doc_dps,
                                zones as f64,
                                bytes_per_query,
                            ],
                        );
                        cells.push(Cell {
                            mode: mode.name().to_string(),
                            queries: n,
                            shards,
                            batch: 0,
                            batching: "adaptive".to_string(),
                            storage: storage.name().to_string(),
                            docs_per_sec: dps,
                            speedup_vs_single: dps / single_dps,
                            speedup_vs_per_doc_sharded: dps / per_doc_dps,
                            zones_skipped: zones,
                            postings_skipped: postings,
                            index_bytes,
                            bytes_per_query,
                        });
                    }
                }
            }
        }
    }

    println!("{}", table.to_markdown());
    let report = SweepReport {
        schema_version: SWEEP_SHARDS_SCHEMA_VERSION,
        engine: "MRIO".to_string(),
        scale: format!("{scale:?}"),
        query_counts,
        measured_docs,
        window,
        doc_pruning: pruning.name().to_string(),
        storage_modes: storages.iter().map(|s| s.name().to_string()).collect(),
        page_budget,
        available_parallelism: cores,
        singles,
        cells,
    };
    match write_json_report("sweep_shards", &report) {
        Ok(path) => eprintln!("  wrote {}", path.display()),
        Err(e) => eprintln!("  failed to write JSON report: {e}"),
    }
}
