//! HTTP load harness: drive a `ctk-server` daemon over real loopback
//! sockets and measure the wire-level publish path.
//!
//! ```text
//! cargo run -p ctk-bench --release --bin http_load -- \
//!     [--addr 127.0.0.1:8722] [--queries 200] [--docs 2000] [--batch 64] \
//!     [--engine mrio] [--lambda 1e-3] [--shards 1] [--mode query|doc] \
//!     [--pruning off|on|auto] [--adaptive [target_ms]] [--queue-depth N] \
//!     [--admission block|reject[:retry_secs]] [--drain] [--out http_load] \
//!     [--acked-log PATH]
//! ```
//!
//! Without `--addr` the harness self-hosts a server on an ephemeral
//! loopback port (same process, still real TCP); with it, it targets an
//! already-running daemon and the engine flags are ignored. One subscriber
//! long-polls `GET /changes` from its own connection for the whole run, so
//! the measurement covers the full loop the paper cares about: publish →
//! match → change fan-out → notification. The run **fails** (exit 1) if
//! the change stream stays empty — a smoke gate CI relies on. With
//! `--drain` it finishes by draining the daemon and asserting that a late
//! publish is refused with 503 while buffered notifications still flush.
//!
//! Writes `results/<out>.json` (`schema_version` 2): batch-publish latency
//! percentiles, wire docs/sec, the subscriber's delivery counters, and the
//! admission counters — how often a publish drew `429 Too Many Requests`
//! (`rejects`) and was retried after honoring `Retry-After` (`retries`).
//! Against a blocking-admission daemon both stay 0; against a rejecting
//! one they measure how hard the publisher actually pushed.
//!
//! `--acked-log PATH` appends one line per *acked* publish — the receipt's
//! `doc_ids`, flushed before the next batch goes out. Crash-recovery CI
//! kills the daemon mid-run and uses this file as the ground truth for
//! which documents the server acknowledged and therefore must not lose.

use continuous_topk::EngineKind;
use ctk_bench::write_json_report;
use ctk_core::{AdaptiveConfig, DocPruning, ShardingMode};
use ctk_server::{AdmissionPolicy, HttpClient, ServerBuilder};
use ctk_stream::{
    ArrivalClock, CorpusConfig, QueryGenerator, QueryWorkload, StreamDriver, WorkloadConfig,
};
use serde::{Serialize, Value};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct LatencyMs {
    p50: f64,
    p95: f64,
    max: f64,
}

#[derive(Serialize)]
struct Report {
    schema_version: u32,
    engine: String,
    queries: usize,
    docs: usize,
    batch: usize,
    elapsed_sec: f64,
    docs_per_sec: f64,
    publish_latency_ms: LatencyMs,
    changes_received: u64,
    changes_dropped: u64,
    rejects: u64,
    retries: u64,
    drained: bool,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn parsed<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let raw = arg_value(args, flag)?;
    match raw.parse() {
        Ok(value) => Some(value),
        Err(_) => die(format!("bad value {raw:?} for {flag}")),
    }
}

fn die(message: impl std::fmt::Display) -> ! {
    eprintln!("http_load: {message}");
    std::process::exit(1);
}

fn terms_json(pairs: &[(ctk_common::TermId, f32)]) -> String {
    let entries: Vec<String> = pairs.iter().map(|(t, w)| format!("[{},{}]", t.0, w)).collect();
    format!("[{}]", entries.join(","))
}

/// Expect a given status, surfacing the body on mismatch.
fn expect(status_body: std::io::Result<(u16, String)>, want: u16, what: &str) -> String {
    match status_body {
        Err(e) => die(format!("{what}: transport error: {e}")),
        Ok((status, body)) if status == want => body,
        Ok((status, body)) => die(format!("{what}: expected {want}, got {status}: {body}")),
    }
}

fn json(body: &str, what: &str) -> Value {
    match serde_json::from_str::<Value>(body) {
        Ok(value) => value,
        Err(e) => die(format!("{what}: unparseable response body: {e}")),
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Long-poll `GET /changes` until the server drains or the run ends;
/// returns `(events, dropped)` as counted from the wire.
fn poll_changes(addr: SocketAddr, subscriber: u64, done: Arc<AtomicBool>) -> (u64, u64) {
    let mut client = HttpClient::connect(addr).unwrap_or_else(|e| die(format!("poller: {e}")));
    client.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let (mut events, mut dropped) = (0u64, 0u64);
    loop {
        let body = expect(
            client.get(&format!("/changes?subscriber={subscriber}&timeout_ms=500")),
            200,
            "poll",
        );
        let poll = json(&body, "poll");
        let batch = poll.get("events").and_then(|e| e.as_array().ok().map(<[Value]>::len));
        events += batch.unwrap_or(0) as u64;
        dropped += poll.get("dropped").and_then(|d| d.as_u64().ok()).unwrap_or(0);
        let draining = poll.get("draining").and_then(|d| d.as_bool().ok()).unwrap_or(false);
        if (draining || done.load(Ordering::SeqCst)) && batch == Some(0) {
            return (events, dropped);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let queries: usize = parsed(&args, "--queries").unwrap_or(200);
    let docs: usize = parsed(&args, "--docs").unwrap_or(2_000);
    let batch: usize = parsed(&args, "--batch").unwrap_or(64).max(1);
    let engine: EngineKind = parsed(&args, "--engine").unwrap_or(EngineKind::Mrio);
    let lambda: f64 = parsed(&args, "--lambda").unwrap_or(1e-3);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "http_load".to_string());
    let drain = args.iter().any(|a| a == "--drain");
    let mut acked_log = arg_value(&args, "--acked-log").map(|path| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| die(format!("cannot open acked log {path}: {e}")))
    });

    // Self-host unless pointed at a running daemon.
    let (server, addr) = match parsed::<SocketAddr>(&args, "--addr") {
        Some(addr) => (None, addr),
        None => {
            let mut builder = ServerBuilder::new(engine).lambda(lambda);
            if let Some(shards) = parsed::<usize>(&args, "--shards") {
                builder = builder.shards(shards);
            }
            if let Some(mode) = parsed::<ShardingMode>(&args, "--mode") {
                builder = builder.sharding(mode);
            }
            if let Some(pruning) = parsed::<DocPruning>(&args, "--pruning") {
                builder = builder.doc_pruning(pruning);
            }
            if args.iter().any(|a| a == "--adaptive") {
                let mut adaptive = AdaptiveConfig::default();
                if let Some(raw) = arg_value(&args, "--adaptive").filter(|v| !v.starts_with("--")) {
                    match raw.parse() {
                        Ok(target) => adaptive = adaptive.target_drain_ms(target),
                        Err(_) => die(format!("bad value {raw:?} for --adaptive")),
                    }
                }
                builder = builder.adaptive_batching(adaptive);
            }
            if let Some(depth) = parsed::<usize>(&args, "--queue-depth") {
                builder = builder.queue_depth(depth);
            }
            if let Some(raw) = arg_value(&args, "--admission") {
                let policy = match raw.as_str() {
                    "block" => AdmissionPolicy::Block,
                    "reject" => AdmissionPolicy::Reject { retry_after: 1.0 },
                    other => match other.strip_prefix("reject:").and_then(|s| s.parse().ok()) {
                        Some(retry_after) => AdmissionPolicy::Reject { retry_after },
                        None => die(format!("bad value {raw:?} for --admission")),
                    },
                };
                builder = builder.admission(policy);
            }
            let server = builder.bind("127.0.0.1:0").unwrap_or_else(|e| die(format!("bind: {e}")));
            let addr = server.addr();
            (Some(server), addr)
        }
    };
    println!("http_load: target http://{addr} ({queries} queries, {docs} docs x{batch})");

    let mut client = HttpClient::connect(addr).unwrap_or_else(|e| die(format!("connect: {e}")));
    client.set_read_timeout(Some(Duration::from_secs(30))).ok();
    expect(client.get("/healthz"), 200, "healthz");

    // Register the query population; a connected workload over a smallish
    // vocabulary so the stream actually moves result sets.
    let corpus = CorpusConfig { vocab_size: 2_000, avg_tokens: 30, ..CorpusConfig::default() };
    let workload =
        WorkloadConfig { workload: QueryWorkload::Connected, k: 5, ..WorkloadConfig::default() };
    let mut qgen = QueryGenerator::new(workload, &corpus);
    for _ in 0..queries {
        let spec = qgen.generate();
        let pairs: Vec<_> = spec.vector.iter().collect();
        let body = format!("{{\"terms\":{},\"k\":{}}}", terms_json(&pairs), spec.k);
        expect(client.post("/queries", &body), 200, "register");
    }

    // One unfiltered subscriber, polled from its own connection.
    let body = expect(client.post("/subscriptions", "{}"), 200, "subscribe");
    let subscriber = json(&body, "subscribe")
        .get("subscriber")
        .and_then(|s| s.as_u64().ok())
        .unwrap_or_else(|| die("subscribe: no subscriber id in response"));
    let done = Arc::new(AtomicBool::new(false));
    let poller = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || poll_changes(addr, subscriber, done))
    };

    // The measured section: publish the stream in batches, wire round-trip
    // latency per batch.
    let mut driver = StreamDriver::new(corpus, ArrivalClock::unit());
    let stream: Vec<_> = driver.by_ref().take(docs).collect();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(docs / batch + 1);
    let (mut rejects, mut retries) = (0u64, 0u64);
    let start = Instant::now();
    for chunk in stream.chunks(batch) {
        let docs_json: Vec<String> = chunk
            .iter()
            .map(|d| {
                let pairs: Vec<_> = d.vector.iter().collect();
                format!("{{\"terms\":{},\"arrival\":{}}}", terms_json(&pairs), d.arrival)
            })
            .collect();
        let body = format!("{{\"docs\":[{}]}}", docs_json.join(","));
        // Publish until admitted: a 429 means the daemon's ingest queue is
        // full, so honor its Retry-After and resubmit the same batch. The
        // recorded latency is the *accepted* attempt's round trip.
        loop {
            let sent = Instant::now();
            match client.post("/publish", &body) {
                Err(e) => die(format!("publish: transport error: {e}")),
                Ok((200, body)) => {
                    latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                    // Record the ack *now*, flushed, so a daemon crash after
                    // this point cannot erase the evidence that it acked.
                    if let Some(log) = acked_log.as_mut() {
                        let ids = json(&body, "publish receipt")
                            .get("doc_ids")
                            .map(|v| serde_json::to_string(v).expect("doc_ids serialize"))
                            .unwrap_or_else(|| die("publish receipt has no doc_ids"));
                        use std::io::Write;
                        writeln!(log, "{ids}")
                            .and_then(|()| log.flush())
                            .unwrap_or_else(|e| die(format!("acked log write: {e}")));
                    }
                    break;
                }
                Ok((429, _)) => {
                    rejects += 1;
                    let backoff = client.retry_after().unwrap_or(1.0).min(5.0);
                    std::thread::sleep(Duration::from_secs_f64(backoff));
                    retries += 1;
                }
                Ok((status, body)) => die(format!("publish: expected 200, got {status}: {body}")),
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();

    let stats = json(&expect(client.get("/stats"), 200, "stats"), "stats");
    let published = stats.get("docs_published").and_then(|d| d.as_u64().ok()).unwrap_or(0);
    if published < docs as u64 {
        die(format!("server saw {published} docs, expected at least {docs}"));
    }

    let drained = if drain {
        expect(client.post("/admin/drain", ""), 202, "drain");
        // The drained daemon must refuse late publishes...
        expect(client.post("/publish", "{\"terms\":[[1,1.0]]}"), 503, "post-drain publish");
        // ...while still serving reads.
        expect(client.get("/stats"), 200, "post-drain stats");
        true
    } else {
        done.store(true, Ordering::SeqCst);
        false
    };
    let (changes_received, changes_dropped) =
        poller.join().unwrap_or_else(|_| die("poller thread panicked"));
    if changes_received == 0 {
        die("no change events reached the subscriber — the wire loop is broken");
    }

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let report = Report {
        schema_version: 2,
        engine: engine.to_string(),
        queries,
        docs,
        batch,
        elapsed_sec: elapsed,
        docs_per_sec: docs as f64 / elapsed,
        publish_latency_ms: LatencyMs {
            p50: percentile(&latencies_ms, 0.50),
            p95: percentile(&latencies_ms, 0.95),
            max: percentile(&latencies_ms, 1.0),
        },
        changes_received,
        changes_dropped,
        rejects,
        retries,
        drained,
    };
    let path = write_json_report(&out, &report).unwrap_or_else(|e| die(format!("report: {e}")));
    println!(
        "http_load: {:.0} docs/sec over the wire, publish p50 {:.2} ms / p95 {:.2} ms, \
         {changes_received} changes ({changes_dropped} dropped), \
         {rejects} rejects / {retries} retries -> {}",
        report.docs_per_sec,
        report.publish_latency_ms.p50,
        report.publish_latency_ms.p95,
        path.display()
    );

    if let Some(server) = server {
        server.shutdown();
    }
}
