//! Ablation A5 — sharded-monitor scaling: throughput of the parallel
//! monitor with 1, 2 and 4 shards over the same query population.
//!
//! ```text
//! cargo run -p ctk-bench --release --bin scaling_threads [-- --scale smoke|laptop]
//! ```

use ctk_bench::{prepare, write_csv, ExperimentConfig, Scale, Table};
use ctk_core::{MrioSeg, ShardedMonitor};
use ctk_stream::QueryWorkload;
use std::time::Instant;

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Laptop);
    let n = scale.query_counts()[scale.query_counts().len() / 2];
    let cfg = ExperimentConfig::fig1(QueryWorkload::Connected, n, scale);
    let wl = prepare(&cfg);

    let mut table =
        Table::new("A5 — sharded monitor scaling (MRIO)", "shards", &["ms/event", "speedup"], "");
    let mut base = 0.0f64;
    for shards in [1usize, 2, 4] {
        let mut monitor = ShardedMonitor::new(shards, || MrioSeg::new(cfg.lambda));
        let mut ids = Vec::with_capacity(wl.specs.len());
        for spec in &wl.specs {
            ids.push(monitor.register(spec.clone()));
        }
        for (i, spec_seeds) in wl.seeds.iter().enumerate() {
            if !spec_seeds.is_empty() {
                monitor.seed_results(ids[i], spec_seeds);
            }
        }
        for doc in &wl.warmup {
            monitor.process(doc.clone());
        }
        let start = Instant::now();
        for doc in &wl.measured {
            monitor.process(doc.clone());
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / wl.measured.len() as f64;
        if shards == 1 {
            base = ms;
        }
        eprintln!("  shards={shards} {ms:.4} ms/event (speedup {:.2}x)", base / ms);
        table.push_row(shards.to_string(), vec![ms, base / ms]);
    }
    println!("{}", table.to_markdown());
    let _ = write_csv("scaling_threads", &table);
}
