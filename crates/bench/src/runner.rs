//! The timed experiment runner.
//!
//! Protocol (identical for every engine, matching the paper's metric):
//! register all queries, play the warmup stream untimed (thresholds fill and
//! reach steady state), then time each measured `process` call — the
//! *response time per stream event*.

use crate::workload::PreparedWorkload;
use ctk_core::{ContinuousTopK, CumulativeStats};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Outcome of one engine × workload run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    pub algo: String,
    pub num_queries: usize,
    pub events: usize,
    /// Mean response time per stream event, in milliseconds (the paper's
    /// Figure-1 y-axis).
    pub avg_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub max_ms: f64,
    /// Wall-clock of the measured region, ms.
    pub total_ms: f64,
    /// Work counters accumulated over the measured region only.
    pub stats: CumulativeStats,
    /// Registration + warmup wall clock, ms (index build cost).
    pub setup_ms: f64,
}

fn diff(after: &CumulativeStats, before: &CumulativeStats) -> CumulativeStats {
    CumulativeStats {
        events: after.events - before.events,
        full_evaluations: after.full_evaluations - before.full_evaluations,
        iterations: after.iterations - before.iterations,
        postings_accessed: after.postings_accessed - before.postings_accessed,
        bound_computations: after.bound_computations - before.bound_computations,
        updates: after.updates - before.updates,
        matched_lists: after.matched_lists - before.matched_lists,
        zones_skipped: after.zones_skipped - before.zones_skipped,
        postings_skipped: after.postings_skipped - before.postings_skipped,
        expired: after.expired - before.expired,
        evicted: after.evicted - before.evicted,
        renormalizations: after.renormalizations - before.renormalizations,
    }
}

/// Register, warm up, then time the measured stream on `engine`.
pub fn run_engine(engine: &mut dyn ContinuousTopK, workload: &PreparedWorkload) -> RunResult {
    let setup_start = Instant::now();
    workload.install(engine);
    for doc in &workload.warmup {
        engine.process(doc);
    }
    let setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;

    let before = *engine.cumulative();
    let mut per_event_ns: Vec<u64> = Vec::with_capacity(workload.measured.len());
    let measured_start = Instant::now();
    for doc in &workload.measured {
        let t = Instant::now();
        engine.process(doc);
        per_event_ns.push(t.elapsed().as_nanos() as u64);
    }
    let total_ms = measured_start.elapsed().as_secs_f64() * 1e3;
    let stats = diff(engine.cumulative(), &before);

    per_event_ns.sort_unstable();
    let n = per_event_ns.len().max(1);
    let pct = |p: f64| -> f64 {
        let idx = ((n as f64 * p).ceil() as usize).min(n) - 1;
        per_event_ns.get(idx).copied().unwrap_or(0) as f64 / 1e6
    };
    let avg_ms = per_event_ns.iter().sum::<u64>() as f64 / n as f64 / 1e6;

    RunResult {
        algo: engine.name().to_string(),
        num_queries: workload.specs.len(),
        events: workload.measured.len(),
        avg_ms,
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        max_ms: per_event_ns.last().copied().unwrap_or(0) as f64 / 1e6,
        total_ms,
        stats,
        setup_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, Scale};
    use crate::engines::make_engine;
    use crate::workload::prepare;
    use ctk_stream::QueryWorkload;

    #[test]
    fn runner_produces_consistent_numbers() {
        let cfg = ExperimentConfig::fig1(QueryWorkload::Connected, 400, Scale::Smoke);
        let wl = prepare(&cfg);
        let mut e = make_engine("MRIO", cfg.lambda);
        let r = run_engine(e.as_mut(), &wl);
        assert_eq!(r.algo, "MRIO");
        assert_eq!(r.events, cfg.measured_events);
        assert_eq!(r.stats.events as usize, cfg.measured_events);
        assert!(r.avg_ms >= 0.0);
        assert!(r.p50_ms <= r.p95_ms && r.p95_ms <= r.max_ms);
        assert!(r.setup_ms > 0.0);
        assert_eq!(e.num_queries(), 400);
    }

    #[test]
    fn engines_see_identical_inputs() {
        let cfg = ExperimentConfig::fig1(QueryWorkload::Uniform, 300, Scale::Smoke);
        let wl = prepare(&cfg);
        let mut a = make_engine("RIO", cfg.lambda);
        let mut b = make_engine("MRIO", cfg.lambda);
        let ra = run_engine(a.as_mut(), &wl);
        let rb = run_engine(b.as_mut(), &wl);
        // Same updates must be produced by exact algorithms on same input.
        assert_eq!(ra.stats.updates, rb.stats.updates);
    }
}
