//! Workload materialization: one reproducible `(queries, warmup, measured)`
//! triple per experiment cell, shared by every engine so comparisons are
//! input-identical.

use crate::config::ExperimentConfig;
use ctk_common::{DocId, Document, QueryId, QuerySpec, ScoredDoc};
use ctk_core::ContinuousTopK;
use ctk_stream::{ArrivalClock, QueryGenerator, StreamDriver};

/// A fully materialized experiment input.
pub struct PreparedWorkload {
    pub specs: Vec<QuerySpec>,
    /// Steady-state seeds, aligned with `specs` (empty vec = no seed).
    pub seeds: Vec<Vec<ScoredDoc>>,
    pub warmup: Vec<Document>,
    pub measured: Vec<Document>,
}

impl PreparedWorkload {
    /// Register all queries and apply the steady-state seeds on `engine` —
    /// the common prologue of every run.
    pub fn install(&self, engine: &mut dyn ContinuousTopK) {
        for (i, spec) in self.specs.iter().enumerate() {
            let qid = engine.register(spec.clone());
            if !self.seeds[i].is_empty() {
                engine.seed_results(qid, &self.seeds[i]);
            }
        }
    }
}

/// Build the workload for a config. Documents are pre-generated so that
/// generator cost never pollutes the timed region.
pub fn prepare(cfg: &ExperimentConfig) -> PreparedWorkload {
    let mut qgen = QueryGenerator::new(cfg.workload.clone(), &cfg.corpus);
    let specs = qgen.generate_batch(cfg.num_queries);

    // Steady-state emulation (DESIGN.md §3): the k-th best score of a query
    // that has watched a long stream approaches its best achievable score.
    // Sample a pre-stream corpus slice, find each query's best score over
    // it with the exhaustive matcher, and seed all k slots just below it.
    let seeds = if cfg.steady_state_sample > 0 {
        let mut seed_corpus = cfg.corpus.clone();
        seed_corpus.seed = cfg.corpus.seed.wrapping_add(0x5EED_5EED);
        let mut pre = StreamDriver::new(seed_corpus, ArrivalClock::unit());
        let mut oracle = ctk_core::Naive::new(0.0);
        let mut best1: Vec<QueryId> = Vec::with_capacity(specs.len());
        for spec in &specs {
            let mut s1 = spec.clone();
            s1.k = 1;
            best1.push(oracle.register(s1));
        }
        for doc in pre.take_batch(cfg.steady_state_sample) {
            oracle.process(&doc);
        }
        let k = cfg.workload.k;
        best1
            .iter()
            .enumerate()
            .map(|(i, &qid)| {
                let best = oracle
                    .results(qid)
                    .and_then(|r| r.first().map(|sd| sd.score.get()))
                    .unwrap_or(0.0);
                if best <= 0.0 {
                    return Vec::new();
                }
                // A slightly descending ladder: the k-th slot sits just
                // under the best, emulating tight steady-state thresholds.
                (0..k)
                    .map(|slot| {
                        ScoredDoc::new(
                            DocId(u64::MAX / 2 + (i * k + slot) as u64),
                            best * (1.0 - 0.002 * slot as f64),
                        )
                    })
                    .collect()
            })
            .collect()
    } else {
        vec![Vec::new(); specs.len()]
    };

    let mut driver = StreamDriver::new(cfg.corpus.clone(), ArrivalClock::unit());
    let warmup = driver.take_batch(cfg.warmup_events);
    let measured = driver.take_batch(cfg.measured_events);
    PreparedWorkload { specs, seeds, warmup, measured }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use ctk_stream::QueryWorkload;

    #[test]
    fn prepared_sizes_match_config() {
        let cfg = ExperimentConfig::fig1(QueryWorkload::Uniform, 500, Scale::Smoke);
        let w = prepare(&cfg);
        assert_eq!(w.specs.len(), 500);
        assert_eq!(w.seeds.len(), 500);
        assert_eq!(w.warmup.len(), cfg.warmup_events);
        assert_eq!(w.measured.len(), cfg.measured_events);
        // Measured events continue the warmup timeline.
        assert!(w.measured[0].arrival > w.warmup.last().unwrap().arrival - 1e-9);
    }

    #[test]
    fn preparation_is_deterministic() {
        let cfg = ExperimentConfig::fig1(QueryWorkload::Connected, 200, Scale::Smoke);
        let a = prepare(&cfg);
        let b = prepare(&cfg);
        assert_eq!(a.specs, b.specs);
        assert_eq!(a.measured, b.measured);
    }
}
