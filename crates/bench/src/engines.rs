//! Engine factory: construct any algorithm by its report name.
//!
//! Thin shim over the facade's [`EngineKind`] — the harness's name-keyed
//! tables and CLI flags resolve through the same registry the application
//! builder uses, so a new engine kind lands everywhere at once.

use continuous_topk::EngineKind;
use ctk_core::{ContinuousTopK, DocPruning, ShardedMonitor, ShardingMode, StorageConfig};

/// The five methods of the paper's Figure 1, in its legend order.
pub const PAPER_ALGOS: [&str; 5] = ["RTA", "RIO", "MRIO", "SortQuer", "TPS"];

/// All known engine names.
pub const ALL_ALGOS: [&str; 8] =
    ["RTA", "RIO", "MRIO", "MRIO-block", "MRIO-suffix", "SortQuer", "TPS", "Naive"];

/// Construct an engine by name. Panics on unknown names (callers pass
/// compile-time constants).
pub fn make_engine(name: &str, lambda: f64) -> Box<dyn ContinuousTopK + Send> {
    make_engine_with(name, lambda, &StorageConfig::plain())
}

/// [`make_engine`] with an explicit postings-storage configuration (ignored
/// by engines without a query index).
pub fn make_engine_with(
    name: &str,
    lambda: f64,
    storage: &StorageConfig,
) -> Box<dyn ContinuousTopK + Send> {
    let kind: EngineKind = name.parse().unwrap_or_else(|e| panic!("{e}"));
    kind.build_engine_with(lambda, storage)
}

/// Construct a sharded monitor in either sharding mode. Query mode runs one
/// engine of the named kind per shard; document mode shares one index epoch
/// across scorer workers (the engine name is irrelevant there — the
/// shared-epoch walk is exact for every kind) with the given walk-pruning
/// policy (ignored by query mode).
pub fn make_sharded(
    mode: ShardingMode,
    shards: usize,
    engine: &str,
    lambda: f64,
    pruning: DocPruning,
) -> ShardedMonitor {
    make_sharded_with(mode, shards, engine, lambda, pruning, &StorageConfig::plain())
}

/// [`make_sharded`] with an explicit postings-storage configuration, applied
/// to every shard's query index.
pub fn make_sharded_with(
    mode: ShardingMode,
    shards: usize,
    engine: &str,
    lambda: f64,
    pruning: DocPruning,
    storage: &StorageConfig,
) -> ShardedMonitor {
    match mode {
        ShardingMode::Queries => {
            ShardedMonitor::new(shards, || make_engine_with(engine, lambda, storage))
        }
        ShardingMode::Documents => {
            let mut m = ShardedMonitor::new_doc_parallel_with(shards, lambda, storage);
            m.set_doc_pruning(pruning);
            m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_names_round_trip() {
        for name in ALL_ALGOS {
            let e = make_engine(name, 0.001);
            assert_eq!(e.name(), name);
            assert_eq!(e.lambda(), 0.001);
        }
    }

    #[test]
    fn name_tables_match_the_kind_registry() {
        assert_eq!(ALL_ALGOS, EngineKind::ALL.map(|k| k.name()));
        assert_eq!(PAPER_ALGOS, EngineKind::PAPER.map(|k| k.name()));
    }

    #[test]
    #[should_panic]
    fn unknown_name_panics() {
        let _ = make_engine("WAND2000", 0.0);
    }

    #[test]
    fn sharded_factory_builds_both_modes() {
        for mode in ShardingMode::ALL {
            for pruning in DocPruning::ALL {
                let m = make_sharded(mode, 2, "MRIO", 0.001, pruning);
                assert_eq!(m.mode(), mode);
                assert_eq!(m.shards(), 2);
                assert_eq!(m.lambda(), 0.001);
                match mode {
                    ShardingMode::Queries => assert_eq!(m.doc_pruning(), None),
                    ShardingMode::Documents => assert_eq!(m.doc_pruning(), Some(pruning)),
                }
            }
        }
    }
}
