//! Engine factory: construct any algorithm by its report name.

use ctk_baselines::{Rta, SortQuer, Tps};
use ctk_core::{ContinuousTopK, MrioBlock, MrioSeg, MrioSuffix, Naive, Rio};

/// The five methods of the paper's Figure 1, in its legend order.
pub const PAPER_ALGOS: [&str; 5] = ["RTA", "RIO", "MRIO", "SortQuer", "TPS"];

/// All known engine names.
pub const ALL_ALGOS: [&str; 8] =
    ["RTA", "RIO", "MRIO", "MRIO-block", "MRIO-suffix", "SortQuer", "TPS", "Naive"];

/// Construct an engine by name. Panics on unknown names (callers pass
/// compile-time constants).
pub fn make_engine(name: &str, lambda: f64) -> Box<dyn ContinuousTopK> {
    match name {
        "RTA" => Box::new(Rta::new(lambda)),
        "RIO" => Box::new(Rio::new(lambda)),
        "MRIO" => Box::new(MrioSeg::new(lambda)),
        "MRIO-block" => Box::new(MrioBlock::new(lambda)),
        "MRIO-suffix" => Box::new(MrioSuffix::new(lambda)),
        "SortQuer" => Box::new(SortQuer::new(lambda)),
        "TPS" => Box::new(Tps::new(lambda)),
        "Naive" => Box::new(Naive::new(lambda)),
        other => panic!("unknown engine name: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_names_round_trip() {
        for name in ALL_ALGOS {
            let e = make_engine(name, 0.001);
            assert_eq!(e.name(), name);
            assert_eq!(e.lambda(), 0.001);
        }
    }

    #[test]
    #[should_panic]
    fn unknown_name_panics() {
        let _ = make_engine("WAND2000", 0.0);
    }
}
