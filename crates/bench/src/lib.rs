//! # ctk-bench
//!
//! The benchmark harness that regenerates the paper's evaluation (Fig. 1a,
//! Fig. 1b, the speedup claims) and the ablations listed in DESIGN.md §5.
//!
//! Structure:
//! * [`config`] — experiment descriptions (corpus, workload, sweep points);
//! * [`workload`] — materializes a reproducible `(queries, warmup stream,
//!   measured stream)` triple;
//! * [`engines`] — a factory constructing any algorithm by name;
//! * [`runner`] — registers, warms up, then times `process` per event;
//! * [`report`] — markdown / CSV / JSON emission into `results/`.
//!
//! Binaries (`src/bin/*.rs`): `fig1`, `optimality`, `ablation_zonemax`,
//! `sweep_k`, `sweep_lambda`, `sweep_doclen`, `scaling_threads`,
//! `sweep_shards` (sharded-ingestion throughput: `--mode query|doc|both`,
//! `--queries N[,N...]`, `--pruning off|on|auto`), `compare_reports` (the
//! CI perf-regression gate over two `sweep_shards` reports, joined on
//! `queries × mode × shards × batch`). Criterion micro-benches live in
//! `benches/` (more in `crates/core/benches`).

pub mod config;
pub mod engines;
pub mod report;
pub mod runner;
pub mod workload;

pub use config::{ExperimentConfig, Scale};
pub use engines::{make_engine, make_engine_with, make_sharded, make_sharded_with, PAPER_ALGOS};
pub use report::{
    existing_report_schema, write_csv, write_json, write_json_report, Table,
    SWEEP_SHARDS_SCHEMA_VERSION,
};
pub use runner::{run_engine, RunResult};
pub use workload::{prepare, PreparedWorkload};
