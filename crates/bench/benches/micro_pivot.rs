//! Microbenchmarks of the traversal primitives: galloping posting-list
//! seeks and the cursor-set repair (DESIGN.md §6.3) — the two operations
//! every ID-ordering iteration performs.

use criterion::{criterion_group, criterion_main, Criterion};
use ctk_common::{DocId, Document, QueryId, QuerySpec, TermId};
use ctk_core::engine::CursorSet;
use ctk_index::{PostingsList, QueryIndex};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn bench_seek(c: &mut Criterion) {
    let mut list = PostingsList::new();
    let mut rng = StdRng::seed_from_u64(1);
    let mut qid = 0u32;
    for _ in 0..100_000 {
        qid += rng.gen_range(1u32..20);
        list.push(QueryId(qid), 0.5);
    }
    let max_id = qid;
    let mut group = c.benchmark_group("postings/seek");
    group.sample_size(30);
    group.bench_function("galloping", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let from = rng.gen_range(0..list.len());
            let target = QueryId(rng.gen_range(0..max_id));
            std::hint::black_box(list.seek(from, target))
        });
    });
    group.finish();
}

fn bench_cursor_repair(c: &mut Criterion) {
    // A realistic matched-list set: 150 lists over one document.
    let mut index = QueryIndex::new();
    let mut rng = StdRng::seed_from_u64(3);
    for q in 0..20_000u32 {
        let terms: Vec<(TermId, f32)> =
            (0..3).map(|_| (TermId(rng.gen_range(0..150)), 1.0)).collect();
        if let Ok(spec) = QuerySpec::new(terms, 1) {
            let _ = index.register(&spec.vector, spec.k as u32);
            let _ = q;
        }
    }
    let doc = Document::new(DocId(0), (0..150).map(|t| (TermId(t), 1.0)).collect(), 0.0);
    let mut group = c.benchmark_group("cursors");
    group.sample_size(30);
    group.bench_function("build_150_lists", |b| {
        let mut cs = CursorSet::default();
        b.iter(|| std::hint::black_box(cs.build(&index, &doc)));
    });
    group.bench_function("repair_prefix_small", |b| {
        let mut cs = CursorSet::default();
        cs.build(&index, &doc);
        b.iter(|| {
            // Simulate a small jump: advance two cursors then repair.
            let n = cs.cursors.len();
            if n >= 4 {
                let target = cs.cursors[3].qid;
                for i in 0..2 {
                    let list = index.list(cs.cursors[i].list);
                    let pos = list.seek(cs.cursors[i].pos, target);
                    cs.cursors[i].pos = pos.min(list.len().saturating_sub(1));
                    cs.cursors[i].qid = if pos < list.len() { list.get(pos).qid } else { target };
                }
                cs.repair_prefix(2);
            }
            std::hint::black_box(cs.cursors.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_seek, bench_cursor_repair);
criterion_main!(benches);
