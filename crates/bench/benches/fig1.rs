//! Criterion harness for the paper's Figure 1 at smoke scale: per-event
//! response time of all five methods on both workloads. The full-scale
//! regeneration lives in the `fig1` binary (`--bin fig1 -- --scale laptop`);
//! this bench keeps `cargo bench` fast while still exercising the exact
//! measurement path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctk_bench::{make_engine, prepare, ExperimentConfig, Scale, PAPER_ALGOS};
use ctk_stream::QueryWorkload;

fn bench_fig1(c: &mut Criterion) {
    for workload in [QueryWorkload::Uniform, QueryWorkload::Connected] {
        let cfg = ExperimentConfig::fig1(workload, 4_000, Scale::Smoke);
        let wl = prepare(&cfg);
        let mut group = c.benchmark_group(format!("fig1/{}", workload.name()));
        group.sample_size(10);
        for algo in PAPER_ALGOS {
            group.bench_function(BenchmarkId::from_parameter(algo), |b| {
                // Setup (registration + seeding + warmup) outside the timer;
                // the measured closure processes the measured stream once.
                let mut engine = make_engine(algo, cfg.lambda);
                wl.install(engine.as_mut());
                for doc in &wl.warmup {
                    engine.process(doc);
                }
                let mut idx = 0usize;
                b.iter(|| {
                    let doc = &wl.measured[idx % wl.measured.len()];
                    idx += 1;
                    engine.process(doc)
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
