//! Microbenchmarks of the index substrate: the three zone-max structures
//! (range query + point update) and the versioned max tracker. These are
//! the per-iteration primitives whose constants decide the ID-ordering
//! family's wall-clock (DESIGN.md §6.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctk_common::QueryId;
use ctk_index::{BlockMax, MaxSegTree, SuffixMax, VersionedMaxTracker, ZoneMax};
use rand::{rngs::StdRng, Rng, SeedableRng};

const N: usize = 16_384;

fn values() -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..N).map(|_| rng.gen_range(0.0..2.0)).collect()
}

fn bench_range_max(c: &mut Criterion) {
    let vals = values();
    let mut group = c.benchmark_group("zone_max/range_max");
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(7);
    let ranges: Vec<(usize, usize)> = (0..1024)
        .map(|_| {
            let lo = rng.gen_range(0..N - 64);
            (lo, lo + rng.gen_range(1usize..64))
        })
        .collect();

    macro_rules! bench_impl {
        ($name:expr, $mk:expr) => {
            group.bench_function(BenchmarkId::from_parameter($name), |b| {
                let mut z = $mk;
                z.rebuild(&vals);
                let mut i = 0usize;
                b.iter(|| {
                    let (lo, hi) = ranges[i % ranges.len()];
                    i += 1;
                    std::hint::black_box(z.range_max(lo, hi))
                });
            });
        };
    }
    bench_impl!("segtree", MaxSegTree::new());
    bench_impl!("block", BlockMax::new());
    bench_impl!("suffix", SuffixMax::new());
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let vals = values();
    let mut group = c.benchmark_group("zone_max/update");
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(9);
    let updates: Vec<(usize, f64)> =
        (0..1024).map(|_| (rng.gen_range(0..N), rng.gen_range(0.0..2.0))).collect();

    macro_rules! bench_impl {
        ($name:expr, $mk:expr) => {
            group.bench_function(BenchmarkId::from_parameter($name), |b| {
                let mut z = $mk;
                z.rebuild(&vals);
                let mut i = 0usize;
                b.iter(|| {
                    let (pos, v) = updates[i % updates.len()];
                    i += 1;
                    z.update(pos, v);
                });
            });
        };
    }
    bench_impl!("segtree", MaxSegTree::new());
    bench_impl!("block", BlockMax::new());
    bench_impl!("suffix", SuffixMax::new());
    group.finish();
}

fn bench_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_tracker");
    group.sample_size(30);
    group.bench_function("push_peek", |b| {
        let mut t = VersionedMaxTracker::new();
        let mut version = vec![0u32; 1000];
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let q = rng.gen_range(0..1000u32);
            version[q as usize] += 1;
            t.push(QueryId(q), version[q as usize], rng.gen_range(0.0..2.0));
            std::hint::black_box(t.peek_max(|qid, v| version[qid.index()] == v))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_range_max, bench_update, bench_tracker);
criterion_main!(benches);
