//! Identifier newtypes.
//!
//! The system manipulates three id spaces that must never be confused:
//! terms (dictionary entries), queries (registered CTQDs) and documents
//! (stream events). All three are plain integers at runtime; the newtypes
//! exist purely for type safety and cost nothing.

use serde::{Deserialize, Serialize};

/// Identifier of a dictionary term. Dense, assigned by the vocabulary (or the
/// synthetic generator) starting from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct TermId(pub u32);

/// Identifier of a registered continuous query (CTQD).
///
/// Query ids are assigned **monotonically increasing** by the query index;
/// this is what makes ID-ordered postings lists append-only under
/// registration (see `ctk-index`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct QueryId(pub u32);

/// Identifier of a stream document. 64-bit: streams are unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct DocId(pub u64);

impl TermId {
    /// The raw index, for use as a dense array offset.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl QueryId {
    /// The raw index, for use as a dense array offset.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(QueryId(3) < QueryId(10));
        assert!(TermId(0) < TermId(1));
        assert!(DocId(7) > DocId(6));
    }

    #[test]
    fn ids_are_transparent_u32() {
        assert_eq!(std::mem::size_of::<TermId>(), 4);
        assert_eq!(std::mem::size_of::<QueryId>(), 4);
        assert_eq!(std::mem::size_of::<DocId>(), 8);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TermId(5).to_string(), "t5");
        assert_eq!(QueryId(5).to_string(), "q5");
        assert_eq!(DocId(5).to_string(), "d5");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(TermId(42).index(), 42);
        assert_eq!(QueryId(42).index(), 42);
    }
}
