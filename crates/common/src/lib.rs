//! # ctk-common
//!
//! Shared primitive types for the `continuous-topk` workspace: identifier
//! newtypes, sparse document/query vectors, a total-order `f64` wrapper, a
//! fast non-cryptographic hasher used on hot paths, and a CRC-32 for the
//! durability layer's on-disk records.
//!
//! Every other crate in the workspace depends on this one; it depends only on
//! `serde` (for snapshot persistence of the core types).

pub mod crc;
pub mod float;
pub mod hash;
pub mod ids;
pub mod namespace;
pub mod types;

pub use crc::{crc32, Crc32};
pub use float::OrdF64;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{DocId, QueryId, TermId};
pub use namespace::{Namespace, NamespaceRegistry};
pub use types::{
    is_tombstone_weight, Document, Query, QuerySpec, ScoredDoc, SparseVector, Timestamp,
    TOMBSTONE_WEIGHT,
};
