//! A fast non-cryptographic hasher for hot-path integer keys.
//!
//! The performance guide for this workspace recommends replacing SipHash with
//! an Fx-style multiply-rotate hash for integer-keyed tables (score
//! accumulators keyed by `QueryId`, vocabulary lookups, ...). The external
//! `rustc-hash` crate is not in the offline allow-list, so the (tiny, public
//! domain) algorithm is reimplemented here.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Firefox/rustc "Fx" hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one u64, mixed with multiply + rotate per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the buffer; tail bytes folded individually.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        for &b in chunks.remainder() {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::QueryId;

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<QueryId, f64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(QueryId(i), i as f64 * 0.5);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&QueryId(10)], 5.0);
        assert!(m.remove(&QueryId(10)).is_some());
        assert!(!m.contains_key(&QueryId(10)));
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |n: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(n);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_writes_cover_tail() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn distribution_smoke() {
        // Consecutive integer keys should not collide in the low bits a
        // hash table actually uses.
        let mut buckets = [0u32; 64];
        for i in 0..6400u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            buckets[(h.finish() % 64) as usize] += 1;
        }
        // Perfectly uniform would be 100 per bucket; allow wide slack.
        assert!(buckets.iter().all(|&c| c > 20 && c < 400), "{buckets:?}");
    }
}
