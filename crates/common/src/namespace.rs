//! Namespaces: interned tenant labels attached to the public query id space.
//!
//! A [`Namespace`] is a `u16` handle into a string registry. Queries carry
//! the handle (two bytes, `Copy`), the registry owns the strings, and every
//! layer above — retention policies, per-tenant stats, bulk forget — keys on
//! the handle. Interning keeps the per-query footprint flat no matter how
//! long tenant names get, and makes namespace equality a single integer
//! compare on the hot registration/expiry paths.
//!
//! Handle 0 is always the **default namespace** (the empty string): queries
//! registered without an explicit namespace land there, which is what makes
//! the lifecycle layer back-compatible — a monitor that never names a
//! namespace behaves exactly as before.

use serde::{Deserialize, Serialize};

/// Interned namespace handle. `Namespace::DEFAULT` (handle 0, the empty
/// string) is where queries registered without options live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Namespace(pub u16);

impl Namespace {
    /// The default namespace: handle 0, the empty string.
    pub const DEFAULT: Namespace = Namespace(0);

    /// The raw index, for use as a dense array offset.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Namespace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ns{}", self.0)
    }
}

/// The string side of the interning: name → handle and back.
///
/// Slot 0 is pre-seeded with the empty string so [`Namespace::DEFAULT`] is
/// always resolvable. Registration is append-only — namespaces are never
/// forgotten even when all their queries are, so a handle embedded in a
/// snapshot or a stats report stays meaningful for the process lifetime.
#[derive(Debug, Clone)]
pub struct NamespaceRegistry {
    names: Vec<String>,
}

impl Default for NamespaceRegistry {
    fn default() -> Self {
        NamespaceRegistry { names: vec![String::new()] }
    }
}

impl NamespaceRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a name, allocating a handle on first sight. The empty string
    /// always interns to [`Namespace::DEFAULT`].
    ///
    /// # Panics
    /// After 65 536 distinct namespaces — the handle space is a `u16` by
    /// design (two bytes per query), and tenant counts beyond that belong in
    /// separate monitors.
    pub fn intern(&mut self, name: &str) -> Namespace {
        if let Some(ns) = self.find(name) {
            return ns;
        }
        let handle = u16::try_from(self.names.len()).expect("namespace registry full (u16 space)");
        self.names.push(name.to_string());
        Namespace(handle)
    }

    /// Look up a name without interning it.
    pub fn find(&self, name: &str) -> Option<Namespace> {
        self.names.iter().position(|n| n == name).map(|i| Namespace(i as u16))
    }

    /// The name behind a handle. `None` for handles this registry never
    /// allocated.
    pub fn name(&self, ns: Namespace) -> Option<&str> {
        self.names.get(ns.index()).map(String::as_str)
    }

    /// Number of interned namespaces, the default one included.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Never true: slot 0 always holds the default namespace.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All interned names in handle order (index = handle).
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_namespace_is_the_empty_string_at_zero() {
        let mut reg = NamespaceRegistry::new();
        assert_eq!(reg.intern(""), Namespace::DEFAULT);
        assert_eq!(reg.find(""), Some(Namespace::DEFAULT));
        assert_eq!(reg.name(Namespace::DEFAULT), Some(""));
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut reg = NamespaceRegistry::new();
        let a = reg.intern("alerts");
        let b = reg.intern("feeds");
        assert_eq!((a, b), (Namespace(1), Namespace(2)));
        assert_eq!(reg.intern("alerts"), a, "re-interning returns the same handle");
        assert_eq!(reg.find("feeds"), Some(b));
        assert_eq!(reg.find("unknown"), None);
        assert_eq!(reg.name(b), Some("feeds"));
        assert_eq!(reg.name(Namespace(9)), None);
        assert_eq!(reg.names(), &["".to_string(), "alerts".to_string(), "feeds".to_string()]);
    }

    #[test]
    fn handles_are_two_bytes() {
        assert_eq!(std::mem::size_of::<Namespace>(), 2);
    }
}
