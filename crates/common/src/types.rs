//! Sparse vectors, documents, queries and scored results.
//!
//! Both documents and queries are sparse term-weight vectors. Cosine
//! similarity is the dot product of the **unit-normalized** vectors, so both
//! are L2-normalized once at construction and every algorithm downstream
//! works with plain dot products (paper §II, Eq. 1).

use crate::float::OrdF64;
use crate::ids::{DocId, QueryId, TermId};
use serde::{Deserialize, Serialize};

/// Logical stream time, in abstract "seconds". The stream driver assigns
/// monotonically non-decreasing timestamps to arriving documents.
pub type Timestamp = f64;

/// The tombstone sentinel for stored posting weights.
///
/// Every weight-bearing store in the workspace — the plain `Vec` postings,
/// the compressed block codec, impact lists, epoch bounds — marks a deleted
/// slot by zeroing its weight. Live weights are validated strictly positive
/// at registration, so exact `== 0.0` comparison is unambiguous; this
/// constant (and [`is_tombstone_weight`]) is the single definition all of
/// them share, so a storage format can't drift from the in-RAM stores.
pub const TOMBSTONE_WEIGHT: f32 = 0.0;

/// True when a stored weight is the tombstone sentinel.
#[inline]
pub fn is_tombstone_weight(weight: f32) -> bool {
    weight == TOMBSTONE_WEIGHT
}

/// A sparse term-weight vector: strictly increasing `TermId`s, strictly
/// positive finite weights.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(TermId, f32)>,
}

impl SparseVector {
    /// Build from arbitrary `(term, weight)` pairs: sorts by term, merges
    /// duplicates by summing, and drops non-positive / non-finite weights.
    pub fn from_pairs(mut pairs: Vec<(TermId, f32)>) -> Self {
        pairs.retain(|&(_, w)| w.is_finite() && w > 0.0);
        pairs.sort_unstable_by_key(|&(t, _)| t);
        let mut entries: Vec<(TermId, f32)> = Vec::with_capacity(pairs.len());
        for (t, w) in pairs {
            match entries.last_mut() {
                Some(last) if last.0 == t => last.1 += w,
                _ => entries.push((t, w)),
            }
        }
        SparseVector { entries }
    }

    /// Build from pairs assumed sorted, unique and positive (checked in debug).
    pub fn from_sorted_unchecked(entries: Vec<(TermId, f32)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(entries.iter().all(|&(_, w)| w > 0.0 && w.is_finite()));
        SparseVector { entries }
    }

    /// Number of distinct terms.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the vector has no terms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(term, weight)` in increasing term order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (TermId, f32)> + '_ {
        self.entries.iter().copied()
    }

    /// The underlying sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[(TermId, f32)] {
        &self.entries
    }

    /// Weight of `term`, or 0 when absent. O(log n).
    pub fn weight(&self, term: TermId) -> f32 {
        match self.entries.binary_search_by_key(&term, |&(t, _)| t) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| (w as f64) * (w as f64)).sum::<f64>().sqrt()
    }

    /// Scale to unit norm. A zero vector is left unchanged.
    ///
    /// Entries whose scaled weight underflows `f32` to zero (a subnormal
    /// term inside a vector with a much larger norm) are dropped: a weight
    /// of exactly `0.0` is the tombstone marker in the ID-ordered postings
    /// lists, so letting one through registration would silently desync the
    /// tombstone accounting downstream.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            let inv = (1.0 / n) as f32;
            for e in &mut self.entries {
                e.1 *= inv;
            }
            self.entries.retain(|&(_, w)| w > 0.0);
        }
    }

    /// True when within `1e-3` of unit norm (or empty).
    pub fn is_normalized(&self) -> bool {
        self.is_empty() || (self.norm() - 1.0).abs() < 1e-3
    }

    /// Dot product by merge-join over the two sorted entry lists.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0f64);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a[i].1 as f64 * b[j].1 as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }
}

/// A stream document: id, unit-normalized term vector, arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    pub id: DocId,
    pub vector: SparseVector,
    pub arrival: Timestamp,
}

impl Document {
    /// Build a document, normalizing the vector.
    pub fn new(id: DocId, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> Self {
        let mut vector = SparseVector::from_pairs(pairs);
        vector.normalize();
        Document { id, vector, arrival }
    }
}

/// What a user registers: a keyword preference vector and the result size `k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    pub vector: SparseVector,
    pub k: usize,
}

/// Errors raised when validating a [`QuerySpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuerySpecError {
    /// `k` must be at least 1.
    ZeroK,
    /// The keyword vector must contain at least one positive-weight term.
    EmptyVector,
}

impl std::fmt::Display for QuerySpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuerySpecError::ZeroK => write!(f, "query k must be >= 1"),
            QuerySpecError::EmptyVector => write!(f, "query vector must be non-empty"),
        }
    }
}

impl std::error::Error for QuerySpecError {}

impl QuerySpec {
    /// Build and validate a query spec, normalizing the vector.
    pub fn new(pairs: Vec<(TermId, f32)>, k: usize) -> Result<Self, QuerySpecError> {
        if k == 0 {
            return Err(QuerySpecError::ZeroK);
        }
        let mut vector = SparseVector::from_pairs(pairs);
        if vector.is_empty() {
            return Err(QuerySpecError::EmptyVector);
        }
        vector.normalize();
        Ok(QuerySpec { vector, k })
    }

    /// Convenience constructor with uniform weights over `terms`.
    pub fn uniform(terms: &[TermId], k: usize) -> Result<Self, QuerySpecError> {
        QuerySpec::new(terms.iter().map(|&t| (t, 1.0)).collect(), k)
    }
}

/// A registered query: id plus its spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    pub id: QueryId,
    pub spec: QuerySpec,
}

/// One entry of a query's top-k result.
///
/// Ordering: higher score first; ties broken by **smaller** doc id so that
/// result lists are fully deterministic across algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoredDoc {
    pub doc: DocId,
    pub score: OrdF64,
}

impl ScoredDoc {
    pub fn new(doc: DocId, score: f64) -> Self {
        ScoredDoc { doc, score: OrdF64::new(score) }
    }
}

impl PartialOrd for ScoredDoc {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScoredDoc {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Descending score, then ascending doc id.
        other.score.cmp(&self.score).then_with(|| self.doc.cmp(&other.doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)).collect())
    }

    #[test]
    fn from_pairs_sorts_and_merges() {
        let s = v(&[(3, 1.0), (1, 2.0), (3, 0.5), (2, -1.0), (4, f32::NAN)]);
        assert_eq!(
            s.as_slice(),
            &[(TermId(1), 2.0), (TermId(3), 1.5)],
            "sorted, merged, negatives and NaN dropped"
        );
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut s = v(&[(1, 3.0), (2, 4.0)]);
        s.normalize();
        assert!((s.norm() - 1.0).abs() < 1e-6);
        assert!(s.is_normalized());
        assert!((s.weight(TermId(1)) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn normalize_drops_underflowed_weights() {
        // 1e-42 is subnormal but positive; dividing by the ~1e4 norm lands
        // below f32::MIN_POSITIVE and underflows to exactly 0.0.
        let mut s = v(&[(1, 1e-42), (2, 1e4)]);
        s.normalize();
        assert_eq!(s.len(), 1, "underflowed entry must be dropped, not kept at 0.0");
        assert_eq!(s.weight(TermId(1)), 0.0);
        assert!(s.as_slice().iter().all(|&(_, w)| w > 0.0));
        assert!(s.is_normalized());
    }

    #[test]
    fn zero_vector_normalize_is_noop() {
        let mut s = SparseVector::default();
        s.normalize();
        assert!(s.is_empty());
        assert!(s.is_normalized());
    }

    #[test]
    fn dot_merge_join() {
        let a = v(&[(1, 1.0), (3, 2.0), (5, 3.0)]);
        let b = v(&[(2, 1.0), (3, 4.0), (5, 1.0)]);
        assert!((a.dot(&b) - (2.0 * 4.0 + 3.0 * 1.0)).abs() < 1e-9);
        assert_eq!(a.dot(&SparseVector::default()), 0.0);
    }

    #[test]
    fn weight_lookup() {
        let a = v(&[(1, 1.0), (3, 2.0)]);
        assert_eq!(a.weight(TermId(3)), 2.0);
        assert_eq!(a.weight(TermId(2)), 0.0);
    }

    #[test]
    fn query_spec_validation() {
        assert_eq!(QuerySpec::new(vec![(TermId(1), 1.0)], 0), Err(QuerySpecError::ZeroK));
        assert_eq!(QuerySpec::new(vec![], 3), Err(QuerySpecError::EmptyVector));
        assert_eq!(
            QuerySpec::new(vec![(TermId(1), -1.0)], 3),
            Err(QuerySpecError::EmptyVector),
            "all-nonpositive weights leave an empty vector"
        );
        let q = QuerySpec::uniform(&[TermId(1), TermId(2)], 5).unwrap();
        assert_eq!(q.k, 5);
        assert!(q.vector.is_normalized());
    }

    #[test]
    fn document_is_normalized_at_construction() {
        let d = Document::new(DocId(1), vec![(TermId(1), 2.0), (TermId(9), 5.0)], 0.0);
        assert!(d.vector.is_normalized());
    }

    #[test]
    fn scored_doc_ordering() {
        let a = ScoredDoc::new(DocId(1), 2.0);
        let b = ScoredDoc::new(DocId(2), 3.0);
        let c = ScoredDoc::new(DocId(3), 2.0);
        let mut xs = vec![a, b, c];
        xs.sort();
        // Descending score; tie between a and c broken by smaller doc id.
        assert_eq!(xs, vec![b, a, c]);
    }
}
