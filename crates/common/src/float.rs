//! A total-order wrapper for `f64` scores.
//!
//! Scores in this system are produced by sums and products of finite
//! non-negative numbers plus the sentinel `+inf` (unfilled-query bound), so
//! NaN can only arise from a bug. `OrdF64` asserts that invariant at
//! construction (debug builds) and provides `Ord`, making scores usable as
//! heap/map keys without pulling in an external crate.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// An `f64` with a total order. Construction from NaN panics in debug builds
/// and is clamped to `-inf` in release builds (so a bug degrades to "worst
/// score" instead of UB-like comparison behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[repr(transparent)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wrap a score. `v` must not be NaN.
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "OrdF64 constructed from NaN");
        if v.is_nan() {
            OrdF64(f64::NEG_INFINITY)
        } else {
            OrdF64(v)
        }
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN excluded at construction.
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

impl From<f64> for OrdF64 {
    #[inline]
    fn from(v: f64) -> Self {
        OrdF64::new(v)
    }
}

impl From<OrdF64> for f64 {
    #[inline]
    fn from(v: OrdF64) -> Self {
        v.0
    }
}

impl std::fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order() {
        let mut v =
            vec![OrdF64::new(3.0), OrdF64::new(f64::INFINITY), OrdF64::new(-1.0), OrdF64::new(0.0)];
        v.sort();
        let raw: Vec<f64> = v.into_iter().map(f64::from).collect();
        assert_eq!(raw, vec![-1.0, 0.0, 3.0, f64::INFINITY]);
    }

    #[test]
    fn equality_and_conversion() {
        assert_eq!(OrdF64::new(2.5), OrdF64::from(2.5));
        assert_eq!(f64::from(OrdF64::new(2.5)), 2.5);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn nan_panics_in_debug() {
        let _ = OrdF64::new(f64::NAN);
    }

    #[test]
    fn usable_in_heap() {
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        h.push(OrdF64::new(1.0));
        h.push(OrdF64::new(5.0));
        h.push(OrdF64::new(3.0));
        assert_eq!(h.pop().unwrap().get(), 5.0);
    }
}
