//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! behind the server's write-ahead journal records.
//!
//! Hand-rolled like [`crate::hash`]: the workspace vendors all its
//! dependencies, so the journal cannot pull in a checksum crate. The
//! lookup table is built in a `const fn` at compile time; the algorithm is
//! the canonical byte-at-a-time table walk, which is plenty for journal
//! records (the bottleneck on that path is the fsync, not the checksum).
//!
//! This is the same CRC-32 as zlib/PNG/Ethernet, so checked-in fixtures of
//! journal bytes can be verified with any standard tool.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// One 256-entry table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 of `bytes` in one call.
///
/// ```
/// // The canonical check vector from the CRC catalogue.
/// assert_eq!(ctk_common::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// An incremental CRC-32, for checksumming a record assembled in pieces
/// (the journal checksums `seq || payload` without concatenating them).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feed more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = (self.state ^ b as u32) & 0xFF;
            self.state = (self.state >> 8) ^ TABLE[idx as usize];
        }
    }

    /// The checksum of everything fed so far. Does not consume: more
    /// `update` calls continue the same stream.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Catalogue vectors for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"length-prefixed journal record payload";
        for split in 0..data.len() {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"torn tail detection";
        let good = crc32(data);
        let mut flipped = data.to_vec();
        for i in 0..flipped.len() * 8 {
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), good, "flip at bit {i} went undetected");
            flipped[i / 8] ^= 1 << (i % 8);
        }
    }
}
