//! Word tokenization.
//!
//! Splits on any non-alphanumeric character, lowercases, and keeps tokens
//! that are 2–40 characters long and contain at least one letter (pure
//! numbers are rarely useful monitoring keywords).

/// Tokenize `text` into lowercase word tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            push_token(&mut out, std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        push_token(&mut out, cur);
    }
    out
}

fn push_token(out: &mut Vec<String>, tok: String) {
    let n = tok.chars().count();
    if (2..=40).contains(&n) && tok.chars().any(|c| c.is_alphabetic()) {
        out.push(tok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            tokenize("Breaking News: Rust 1.95 released!"),
            vec!["breaking", "news", "rust", "released"]
        );
    }

    #[test]
    fn drops_single_chars_and_numbers() {
        assert_eq!(tokenize("a 1 22 3x b2"), vec!["3x", "b2"]);
    }

    #[test]
    fn handles_unicode() {
        assert_eq!(tokenize("Ünïcode Café naïve"), vec!["ünïcode", "café", "naïve"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("... !!! ---").is_empty());
    }

    #[test]
    fn hyphenation_splits() {
        assert_eq!(tokenize("top-k publish-subscribe"), vec!["top", "publish", "subscribe"]);
    }

    #[test]
    fn overlong_tokens_dropped() {
        let long = "x".repeat(41);
        assert!(tokenize(&long).is_empty());
        let ok = "x".repeat(40);
        assert_eq!(tokenize(&ok).len(), 1);
    }
}
