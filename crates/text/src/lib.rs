//! # ctk-text
//!
//! Real-text analysis substrate: everything needed to turn raw text (news
//! articles, wiki pages, social posts) into the sparse term vectors the
//! monitoring engines consume.
//!
//! * [`mod@tokenize`] — lowercasing word tokenizer;
//! * [`stem`] — a from-scratch Porter (1980) stemmer;
//! * [`stopwords`] — standard English stopword filtering;
//! * [`vocab`] — string ⇄ [`ctk_common::TermId`] interning;
//! * [`analyzer`] — the composed pipeline producing documents and queries.
//!
//! The synthetic benchmark path (`ctk-stream`) bypasses this crate entirely;
//! it exists for the end-to-end examples and for real deployments.

pub mod analyzer;
pub mod stem;
pub mod stopwords;
pub mod tokenize;
pub mod vocab;

pub use analyzer::Analyzer;
pub use stem::porter_stem;
pub use stopwords::is_stopword;
pub use tokenize::tokenize;
pub use vocab::Vocabulary;
