//! Vocabulary interning: strings ⇄ dense [`TermId`]s.
//!
//! The monitoring engines work exclusively with dense term ids; this is the
//! boundary where strings stop existing. Ids are assigned in first-seen
//! order and never reused.

use ctk_common::{FxHashMap, TermId};

/// A growable string-to-id interner.
#[derive(Debug, Default)]
pub struct Vocabulary {
    map: FxHashMap<String, TermId>,
    terms: Vec<String>,
}

impl Vocabulary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, allocating a fresh id on first sight.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.map.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.map.insert(term.to_string(), id);
        self.terms.push(term.to_string());
        id
    }

    /// Look up an existing term without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.map.get(term).copied()
    }

    /// The string of an id.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.index()).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("rust");
        let b = v.intern("stream");
        assert_eq!(v.intern("rust"), a);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn round_trip() {
        let mut v = Vocabulary::new();
        let id = v.intern("monitor");
        assert_eq!(v.term(id), Some("monitor"));
        assert_eq!(v.get("monitor"), Some(id));
        assert_eq!(v.get("absent"), None);
        assert_eq!(v.term(TermId(99)), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        for (i, w) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(v.intern(w), TermId(i as u32));
        }
    }
}
