//! The composed text-analysis pipeline.
//!
//! tokenize → stopword filter → Porter stem → vocabulary intern → tf vector.
//! Produces [`Document`]s for the stream side and [`QuerySpec`]s for the
//! user side, guaranteeing both go through the *same* normalization (a
//! query for "Monitoring" must hit documents containing "monitored").

use crate::stem::porter_stem;
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;
use crate::vocab::Vocabulary;
use ctk_common::{DocId, Document, FxHashMap, QuerySpec, TermId, Timestamp};

/// Stateful analyzer owning the vocabulary.
#[derive(Debug, Default)]
pub struct Analyzer {
    vocab: Vocabulary,
}

impl Analyzer {
    pub fn new() -> Self {
        Self::default()
    }

    /// The interned vocabulary (shared by documents and queries).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Analyze raw text into `(term, log-tf)` pairs.
    pub fn term_pairs(&mut self, text: &str) -> Vec<(TermId, f32)> {
        let mut counts: FxHashMap<TermId, u32> = FxHashMap::default();
        for tok in tokenize(text) {
            if is_stopword(&tok) {
                continue;
            }
            let stem = porter_stem(&tok);
            if stem.is_empty() {
                continue;
            }
            *counts.entry(self.vocab.intern(&stem)).or_insert(0) += 1;
        }
        counts.into_iter().map(|(t, tf)| (t, 1.0 + (tf as f32).ln())).collect()
    }

    /// Analyze a stream document.
    pub fn document(&mut self, id: DocId, text: &str, arrival: Timestamp) -> Document {
        Document::new(id, self.term_pairs(text), arrival)
    }

    /// Analyze a user's keyword string into a validated query spec.
    /// Keywords get uniform weight; `k` is the result size.
    pub fn query(&mut self, keywords: &str, k: usize) -> Option<QuerySpec> {
        let pairs: Vec<(TermId, f32)> =
            self.term_pairs(keywords).into_iter().map(|(t, _)| (t, 1.0)).collect();
        QuerySpec::new(pairs, k).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_matches_inflected_document() {
        let mut a = Analyzer::new();
        let q = a.query("monitoring streams", 5).expect("valid query");
        let d = a.document(DocId(1), "We monitored the document stream all day.", 0.0);
        // Both sides stem to {monitor, stream}: cosine must be positive.
        assert!(q.vector.dot(&d.vector) > 0.5, "dot = {}", q.vector.dot(&d.vector));
    }

    #[test]
    fn stopwords_do_not_reach_vectors() {
        let mut a = Analyzer::new();
        let d = a.document(DocId(1), "the quick brown fox and the lazy dog", 0.0);
        assert!(a.vocabulary().get("the").is_none());
        assert!(a.vocabulary().get("quick").is_some());
        assert_eq!(d.vector.len(), 5, "quick brown fox lazy dog");
    }

    #[test]
    fn tf_weights_are_log_scaled() {
        let mut a = Analyzer::new();
        let pairs = a.term_pairs("data data data point");
        let data = a.vocabulary().get("data").unwrap();
        let point = a.vocabulary().get("point").unwrap();
        let wd = pairs.iter().find(|&&(t, _)| t == data).unwrap().1;
        let wp = pairs.iter().find(|&&(t, _)| t == point).unwrap().1;
        assert!((wd - (1.0 + 3f32.ln())).abs() < 1e-6);
        assert_eq!(wp, 1.0);
    }

    #[test]
    fn empty_or_stopword_query_is_rejected() {
        let mut a = Analyzer::new();
        assert!(a.query("", 5).is_none());
        assert!(a.query("the and of", 5).is_none());
        assert!(a.query("rust", 0).is_none(), "k = 0 invalid");
    }

    #[test]
    fn documents_are_normalized() {
        let mut a = Analyzer::new();
        let d = a.document(DocId(2), "continuous top-k monitoring on document streams", 0.0);
        assert!(d.vector.is_normalized());
    }
}
