//! The Porter stemming algorithm (M.F. Porter, 1980), from scratch.
//!
//! Conflates inflected English word forms onto a common stem so that a
//! query for "monitoring" matches documents saying "monitored". Operates on
//! lowercase ASCII; words containing other characters are returned as-is.
//!
//! The implementation follows the original paper's five steps and measure
//! function; the unit tests pin the published example vocabulary.

/// Stem a lowercase word. Words shorter than 3 characters, or containing
/// non-ASCII-alphabetic characters, are returned unchanged.
pub fn porter_stem(word: &str) -> String {
    if word.len() < 3 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut w: Vec<u8> = word.as_bytes().to_vec();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("ascii in, ascii out")
}

/// Is `w[i]` a consonant under Porter's definition ('y' after a consonant
/// acts as a vowel)?
fn is_cons(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_cons(w, i - 1),
        _ => true,
    }
}

/// Porter's measure: the number of vowel→consonant transitions in `w[..n]`.
fn measure(w: &[u8], n: usize) -> usize {
    let mut m = 0;
    let mut prev_vowel = false;
    for i in 0..n {
        let cons = is_cons(w, i);
        if prev_vowel && cons {
            m += 1;
        }
        prev_vowel = !cons;
    }
    m
}

fn has_vowel(w: &[u8], n: usize) -> bool {
    (0..n).any(|i| !is_cons(w, i))
}

/// `*d` — ends with a double consonant.
fn ends_double_cons(w: &[u8]) -> bool {
    let n = w.len();
    n >= 2 && w[n - 1] == w[n - 2] && is_cons(w, n - 1)
}

/// `*o` — ends consonant-vowel-consonant where the final consonant is not
/// w, x or y.
fn ends_cvc(w: &[u8], n: usize) -> bool {
    n >= 3
        && is_cons(w, n - 3)
        && !is_cons(w, n - 2)
        && is_cons(w, n - 1)
        && !matches!(w[n - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// If the word ends with `suffix` and the stem before it has measure > `m`,
/// replace the suffix. Returns true when the rule fired (matched AND
/// applied); `fired_match` distinguishes "matched but condition failed".
fn replace_if_m(w: &mut Vec<u8>, suffix: &str, repl: &str, m_gt: usize) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > m_gt {
        w.truncate(stem_len);
        w.extend_from_slice(repl.as_bytes());
    }
    true // suffix matched: stop scanning this rule table either way
}

fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") {
        w.truncate(w.len() - 2); // sses -> ss
    } else if ends_with(w, "ies") {
        w.truncate(w.len() - 2); // ies -> i
    } else if ends_with(w, "ss") {
        // unchanged
    } else if ends_with(w, "s") {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        let stem = w.len() - 3;
        if measure(w, stem) > 0 {
            w.truncate(w.len() - 1); // eed -> ee
        }
        return;
    }
    let cut = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        2
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        3
    } else {
        return;
    };
    w.truncate(w.len() - cut);
    // Cleanup: restore an 'e' or undo doubling.
    if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
        w.push(b'e');
    } else if ends_double_cons(w) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
        w.truncate(w.len() - 1);
    } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
        w.push(b'e');
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suf, repl) in RULES {
        if replace_if_m(w, suf, repl, 0) {
            return;
        }
    }
}

fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suf, repl) in RULES {
        if replace_if_m(w, suf, repl, 0) {
            return;
        }
    }
}

fn step4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    for suf in SUFFIXES {
        if ends_with(w, suf) {
            let stem = w.len() - suf.len();
            if measure(w, stem) > 1 {
                w.truncate(stem);
            }
            return;
        }
    }
    // (m>1 and (*S or *T)) ION ->
    if ends_with(w, "ion") {
        let stem = w.len() - 3;
        if stem >= 1 && measure(w, stem) > 1 && matches!(w[stem - 1], b's' | b't') {
            w.truncate(stem);
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem = w.len() - 1;
        let m = measure(w, stem);
        if m > 1 || (m == 1 && !ends_cvc(w, stem)) {
            w.truncate(stem);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && ends_double_cons(w) && w[w.len() - 1] == b'l' {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pairs: &[(&str, &str)]) {
        for (input, want) in pairs {
            assert_eq!(porter_stem(input), *want, "stem({input})");
        }
    }

    #[test]
    fn plurals_step1a() {
        check(&[
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
        ]);
    }

    #[test]
    fn past_and_gerund_step1b() {
        check(&[
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
        ]);
    }

    #[test]
    fn y_to_i_step1c() {
        check(&[("happy", "happi"), ("sky", "sky")]);
    }

    #[test]
    fn derivational_step2() {
        check(&[
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("radicalli", "radic"),
            ("differentli", "differ"), // step 4 strips "ent" (official output)
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
        ]);
    }

    #[test]
    fn derivational_step3() {
        check(&[
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"), // step 4 strips "ic" (official output)
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
        ]);
    }

    #[test]
    fn suffix_stripping_step4() {
        check(&[
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
        ]);
    }

    #[test]
    fn final_e_and_ll_step5() {
        check(&[
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ]);
    }

    #[test]
    fn short_words_and_non_ascii_unchanged() {
        check(&[("a", "a"), ("is", "is"), ("be", "be")]);
        assert_eq!(porter_stem("café"), "café");
        assert_eq!(porter_stem("über"), "über");
    }

    #[test]
    fn stemming_conflates_word_family() {
        let family = ["monitor", "monitors", "monitored", "monitoring"];
        let stems: Vec<String> = family.iter().map(|w| porter_stem(w)).collect();
        assert!(stems.iter().all(|s| s == "monitor"), "{stems:?}");
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in ["relat", "monitor", "stream", "document", "queri"] {
            assert_eq!(porter_stem(&porter_stem(w)), porter_stem(w));
        }
    }
}
