//! English stopword filtering.
//!
//! Function words carry no monitoring signal but sit at the top of the Zipf
//! distribution; dropping them shrinks document vectors by ~40% and keeps
//! hot postings lists meaningful.

/// The classic English stopword list (Snowball's, lightly trimmed).
#[rustfmt::skip] // keep the packed table layout
static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "as", "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
    "by", "can", "could", "did", "do", "does", "doing", "down", "during", "each", "few", "for",
    "from", "further", "had", "has", "have", "having", "he", "her", "here", "hers", "herself",
    "him", "himself", "his", "how", "i", "if", "in", "into", "is", "it", "its", "itself", "just",
    "me", "more", "most", "my", "myself", "no", "nor", "not", "now", "of", "off", "on", "once",
    "only", "or", "other", "our", "ours", "ourselves", "out", "over", "own", "same", "she",
    "should", "so", "some", "such", "than", "that", "the", "their", "theirs", "them",
    "themselves", "then", "there", "these", "they", "this", "those", "through", "to", "too",
    "under", "until", "up", "very", "was", "we", "were", "what", "when", "where", "which",
    "while", "who", "whom", "why", "will", "with", "you", "your", "yours", "yourself",
    "yourselves",
];

/// True when `word` (lowercase) is an English stopword. O(log n) lookup.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        assert!(STOPWORDS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "and", "is", "of", "with", "you"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["rust", "stream", "topk", "monitor", "news"] {
            assert!(!is_stopword(w), "{w}");
        }
    }
}
