//! Cross-algorithm equivalence: every engine must maintain result sets
//! identical (documents, scores, order) to the exhaustive oracle, on
//! realistic randomized workloads, under both query workloads, with and
//! without decay, and across register/unregister churn.
//!
//! This is the strongest correctness statement in the repository: RIO, the
//! three MRIO variants, RTA, SortQuer and TPS are all *exact* algorithms —
//! their pruning must never change a single result.

use continuous_topk::prelude::*;

/// All engines under test, freshly constructed.
fn engines(lambda: f64) -> Vec<Box<dyn ContinuousTopK>> {
    vec![
        Box::new(Rio::new(lambda)),
        Box::new(MrioSeg::new(lambda)),
        Box::new(MrioBlock::new(lambda)),
        Box::new(MrioSuffix::new(lambda)),
        Box::new(Rta::new(lambda)),
        Box::new(SortQuer::new(lambda)),
        Box::new(Tps::new(lambda)),
    ]
}

fn scores_close(a: &ScoredDoc, b: &ScoredDoc) -> bool {
    let (x, y) = (a.score.get(), b.score.get());
    a.doc == b.doc && (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
}

/// Run `events` documents against `num_queries` queries on every engine and
/// compare all result sets (and thresholds) against the Naive oracle.
fn run_equivalence(
    workload: QueryWorkload,
    lambda: f64,
    num_queries: usize,
    events: usize,
    seed: u64,
    churn: bool,
) {
    let corpus = CorpusConfig {
        vocab_size: 2_000,
        avg_tokens: 80,
        length_jitter: 0.4,
        zipf_exponent: 1.0,
        model: CorpusModel::TopicMixture {
            num_topics: 12,
            terms_per_topic: 120,
            in_topic_fraction: 0.7,
        },
        seed,
    };
    let wl = WorkloadConfig { workload, terms_min: 2, terms_max: 4, k: 3, seed: seed ^ 0xABCD };
    let mut qgen = QueryGenerator::new(wl, &corpus);
    let specs = qgen.generate_batch(num_queries);

    let mut oracle = Naive::new(lambda);
    let mut subjects = engines(lambda);

    let mut qids = Vec::new();
    for spec in &specs {
        let qid = oracle.register(spec.clone());
        for s in subjects.iter_mut() {
            assert_eq!(s.register(spec.clone()), qid, "{} id allocation", s.name());
        }
        qids.push(qid);
    }

    let mut driver = StreamDriver::new(corpus, ArrivalClock::unit());
    let mut removed: Vec<QueryId> = Vec::new();
    for step in 0..events {
        // Churn: remove one query at 1/3, add one back at 2/3.
        if churn && step == events / 3 {
            let victim = qids[qids.len() / 2];
            assert!(oracle.unregister(victim));
            for s in subjects.iter_mut() {
                assert!(s.unregister(victim), "{} unregister", s.name());
            }
            removed.push(victim);
        }
        if churn && step == 2 * events / 3 {
            let spec = qgen.generate();
            let qid = oracle.register(spec.clone());
            for s in subjects.iter_mut() {
                assert_eq!(s.register(spec.clone()), qid);
            }
            qids.push(qid);
        }

        let doc = driver.next_document();
        oracle.process(&doc);
        for s in subjects.iter_mut() {
            s.process(&doc);
        }

        // Spot-check full equality every few events (cheap enough here).
        if step % 7 == 0 || step + 1 == events {
            for &qid in &qids {
                if removed.contains(&qid) {
                    continue;
                }
                let want = oracle.results(qid).expect("oracle result");
                for s in subjects.iter() {
                    let got = s
                        .results(qid)
                        .unwrap_or_else(|| panic!("{}: missing results for {qid}", s.name()));
                    assert_eq!(
                        got.len(),
                        want.len(),
                        "{} query {qid} step {step}: {got:?} vs {want:?}",
                        s.name()
                    );
                    for (g, w) in got.iter().zip(&want) {
                        assert!(
                            scores_close(g, w),
                            "{} query {qid} step {step}: {g:?} vs {w:?}",
                            s.name()
                        );
                    }
                }
            }
        }
    }

    // Removed queries must stay gone.
    for qid in removed {
        for s in subjects.iter() {
            assert!(s.results(qid).is_none(), "{}", s.name());
        }
    }
}

#[test]
fn uniform_no_decay() {
    run_equivalence(QueryWorkload::Uniform, 0.0, 120, 140, 11, false);
}

#[test]
fn uniform_with_decay() {
    run_equivalence(QueryWorkload::Uniform, 0.01, 120, 140, 22, false);
}

#[test]
fn connected_no_decay() {
    run_equivalence(QueryWorkload::Connected, 0.0, 120, 140, 33, false);
}

#[test]
fn connected_with_decay() {
    run_equivalence(QueryWorkload::Connected, 0.01, 120, 140, 44, false);
}

#[test]
fn connected_with_churn() {
    run_equivalence(QueryWorkload::Connected, 0.005, 80, 150, 55, true);
}

#[test]
fn uniform_with_churn_and_strong_decay() {
    run_equivalence(QueryWorkload::Uniform, 0.05, 80, 150, 66, true);
}

/// Renormalization path: tiny exponent headroom forces many landmark
/// renormalizations; results must stay equivalent throughout.
#[test]
fn heavy_decay_exercises_renormalization() {
    // λ=0.7 over 150 unit-spaced events pushes λΔτ to 105 > 60 (the default
    // headroom), forcing at least one renormalization in every engine.
    run_equivalence(QueryWorkload::Connected, 0.7, 60, 150, 77, false);
}
