//! Property-based tests (proptest) over the core invariants.
//!
//! Three layers:
//! 1. **Sparse-vector algebra** — construction canonicalizes, normalization
//!    yields unit norm, dot is symmetric and Cauchy–Schwarz-bounded.
//! 2. **Top-k state** — after any offer sequence, the set holds exactly the
//!    k best candidates under the deterministic tie-break order, and the
//!    threshold equals the k-th best.
//! 3. **Whole-system equivalence** — on arbitrary random query sets and
//!    document streams, every pruning algorithm maintains results identical
//!    to the exhaustive oracle (the paper's exactness claim, adversarially
//!    sampled).

use continuous_topk::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------- layer 1

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_vector_canonical_form(pairs in prop::collection::vec((0u32..50, 0.01f32..5.0), 0..30)) {
        let v = SparseVector::from_pairs(
            pairs.iter().map(|&(t, w)| (TermId(t), w)).collect(),
        );
        let s = v.as_slice();
        // Sorted strictly ascending, all weights positive.
        prop_assert!(s.windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert!(s.iter().all(|&(_, w)| w > 0.0));
        // Total mass preserved (duplicates merged by summation).
        let want: f32 = pairs.iter().map(|&(_, w)| w).sum();
        let got: f32 = s.iter().map(|&(_, w)| w).sum();
        prop_assert!((want - got).abs() < want * 1e-3 + 1e-6);
    }

    #[test]
    fn normalization_and_dot_properties(
        a in prop::collection::vec((0u32..40, 0.01f32..5.0), 1..20),
        b in prop::collection::vec((0u32..40, 0.01f32..5.0), 1..20),
    ) {
        let mut va = SparseVector::from_pairs(a.iter().map(|&(t, w)| (TermId(t), w)).collect());
        let mut vb = SparseVector::from_pairs(b.iter().map(|&(t, w)| (TermId(t), w)).collect());
        va.normalize();
        vb.normalize();
        prop_assert!(va.is_normalized());
        // Symmetry and Cauchy–Schwarz for unit vectors.
        let d1 = va.dot(&vb);
        let d2 = vb.dot(&va);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!((-1e-6..=1.0 + 1e-6).contains(&d1));
    }
}

// ---------------------------------------------------------------- layer 2

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topk_state_holds_the_k_best(
        k in 1u32..6,
        offers in prop::collection::vec((0u64..40, 0.0f64..10.0), 0..60),
    ) {
        use continuous_topk::core::topk::TopKState;
        let mut state = TopKState::new(k);
        let mut reference: Vec<ScoredDoc> = Vec::new();
        for &(doc, score) in &offers {
            let cand = ScoredDoc::new(DocId(doc), score);
            state.offer(cand);
            reference.push(cand);
            // The reference "best k" under the system's order: sort and
            // dedup is not needed (doc ids repeat, but the engine also
            // never sees duplicate ids in practice; keep raw offers).
            reference.sort();
        }
        reference.truncate(k as usize);
        let got = state.sorted_results();
        prop_assert_eq!(&got, &reference);
        let want_threshold = if reference.len() == k as usize {
            reference.last().unwrap().score.get()
        } else {
            0.0
        };
        prop_assert_eq!(state.threshold(), want_threshold);
    }
}

// ---------------------------------------------------------------- layer 3

/// Strategy: a random query population over a small vocabulary plus a
/// random document stream, with decay chosen to sometimes trigger landmark
/// renormalization.
fn engines(lambda: f64) -> Vec<Box<dyn ContinuousTopK>> {
    vec![
        Box::new(Rio::new(lambda)),
        Box::new(MrioSeg::new(lambda)),
        Box::new(MrioBlock::new(lambda)),
        Box::new(MrioSuffix::new(lambda)),
        Box::new(Rta::new(lambda)),
        Box::new(SortQuer::new(lambda)),
        Box::new(Tps::new(lambda)),
    ]
}

proptest! {
    // Each case runs 8 engines over a small stream; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_algorithms_match_the_oracle(
        queries in prop::collection::vec(
            (prop::collection::vec((0u32..60, 0.1f32..2.0), 1..5), 1usize..4),
            1..40,
        ),
        docs in prop::collection::vec(
            prop::collection::vec((0u32..60, 0.1f32..2.0), 1..12),
            1..60,
        ),
        lambda in prop::sample::select(vec![0.0, 0.01, 0.8]),
    ) {
        let specs: Vec<QuerySpec> = queries
            .iter()
            .filter_map(|(terms, k)| {
                QuerySpec::new(
                    terms.iter().map(|&(t, w)| (TermId(t), w)).collect(),
                    *k,
                )
                .ok()
            })
            .collect();
        prop_assume!(!specs.is_empty());

        let mut oracle = Naive::new(lambda);
        let mut subjects = engines(lambda);
        for spec in &specs {
            let qid = oracle.register(spec.clone());
            for s in subjects.iter_mut() {
                prop_assert_eq!(s.register(spec.clone()), qid);
            }
        }

        for (i, pairs) in docs.iter().enumerate() {
            let doc = Document::new(
                DocId(i as u64),
                pairs.iter().map(|&(t, w)| (TermId(t), w)).collect(),
                i as f64,
            );
            oracle.process(&doc);
            for s in subjects.iter_mut() {
                s.process(&doc);
            }
        }

        for q in 0..specs.len() as u32 {
            let want = oracle.results(QueryId(q)).unwrap();
            for s in subjects.iter() {
                let got = s.results(QueryId(q)).unwrap();
                prop_assert_eq!(got.len(), want.len(), "{} q{}", s.name(), q);
                for (g, w) in got.iter().zip(&want) {
                    prop_assert_eq!(g.doc, w.doc, "{} q{}", s.name(), q);
                    let (x, y) = (g.score.get(), w.score.get());
                    prop_assert!((x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0));
                }
            }
        }
    }
}
