//! Minimal fixed-stream smoke test: `MrioSeg`, `Rio` and the exhaustive
//! oracle must produce identical results on a tiny hand-written stream.
//!
//! The equivalence and property suites cover far more ground, but they
//! share non-trivial setup (generators, strategies, engine batteries). This
//! test has none of that — if it fails, the core register/process/results
//! path itself is broken, not the harness around it.

use continuous_topk::prelude::*;

fn pairs(terms: &[(u32, f32)]) -> Vec<(TermId, f32)> {
    terms.iter().map(|&(t, w)| (TermId(t), w)).collect()
}

#[test]
fn mrio_rio_and_oracle_agree_on_a_tiny_stream() {
    let lambda = 0.01;
    let mut oracle = Naive::new(lambda);
    let mut rio = Rio::new(lambda);
    let mut mrio = MrioSeg::new(lambda);

    // Three queries: overlapping terms, distinct k.
    let specs = [
        QuerySpec::uniform(&[TermId(1), TermId(2)], 2).unwrap(),
        QuerySpec::uniform(&[TermId(2), TermId(3)], 1).unwrap(),
        QuerySpec::new(pairs(&[(1, 2.0), (3, 1.0)]), 3).unwrap(),
    ];
    let mut qids = Vec::new();
    for spec in &specs {
        let qid = oracle.register(spec.clone());
        assert_eq!(rio.register(spec.clone()), qid, "engines must assign identical ids");
        assert_eq!(mrio.register(spec.clone()), qid, "engines must assign identical ids");
        qids.push(qid);
    }

    // Five documents: hits, misses, a tie, and enough time for decay to act.
    let stream = [
        (0u64, vec![(1, 1.0f32)], 0.0f64),
        (1, vec![(2, 1.0), (3, 0.5)], 1.0),
        (2, vec![(9, 1.0)], 2.0), // matches no query
        (3, vec![(1, 1.0)], 3.0), // same cosine as doc 0 for q0, later arrival
        (4, vec![(1, 0.3), (2, 0.3), (3, 0.3)], 10.0),
    ];
    for (id, terms, at) in &stream {
        let doc = Document::new(DocId(*id), pairs(terms), *at);
        oracle.process(&doc);
        rio.process(&doc);
        mrio.process(&doc);
    }

    for &qid in &qids {
        let want = oracle.results(qid).expect("oracle has results");
        let got_rio = rio.results(qid).expect("rio has results");
        let got_mrio = mrio.results(qid).expect("mrio has results");
        assert_eq!(got_rio, want, "Rio vs oracle, {qid}");
        assert_eq!(got_mrio, want, "MrioSeg vs oracle, {qid}");
        assert!(!want.is_empty(), "every query matched at least one doc, {qid}");
    }

    // The decayed ordering is deterministic: doc 4 is fresh but weak on any
    // single term; doc 0 vs doc 3 tie on cosine and resolve by recency under
    // decay. Pin q1 (k = 1) exactly: its best must be the fresh doc 4 or the
    // strong doc 1 — compare against the oracle's explicit answer.
    let top_q1 = &oracle.results(qids[1]).unwrap()[0];
    assert_eq!(top_q1.doc, DocId(1), "q1's winner is the strong early doc");
}
