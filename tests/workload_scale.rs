//! Workload-scale integration tests: the realistic generator path
//! (topic-mixture corpus, Connected/Uniform queries), steady-state seeding,
//! the sharded monitor and the snapshot cycle — everything the benchmark
//! harness relies on, cross-checked against the oracle at a size large
//! enough to exercise jumps, zone prunes and tracker compaction.

use continuous_topk::prelude::*;

fn corpus(seed: u64) -> CorpusConfig {
    CorpusConfig {
        vocab_size: 5_000,
        avg_tokens: 100,
        length_jitter: 0.4,
        zipf_exponent: 1.0,
        model: CorpusModel::TopicMixture {
            num_topics: 25,
            terms_per_topic: 150,
            in_topic_fraction: 0.7,
        },
        seed,
    }
}

fn specs(workload: QueryWorkload, n: usize, seed: u64) -> Vec<QuerySpec> {
    let cfg = WorkloadConfig { workload, terms_min: 2, terms_max: 4, k: 5, seed };
    QueryGenerator::new(cfg, &corpus(seed)).generate_batch(n)
}

/// Steady-state seeding (identical ladders into every engine) must preserve
/// cross-engine equality — this is the exact protocol the harness uses.
#[test]
fn seeded_engines_stay_equivalent() {
    let lambda = 1e-3;
    let specs = specs(QueryWorkload::Connected, 300, 7);

    let mut oracle = Naive::new(lambda);
    let mut engines: Vec<Box<dyn ContinuousTopK>> = vec![
        Box::new(Rio::new(lambda)),
        Box::new(MrioSeg::new(lambda)),
        Box::new(MrioBlock::new(lambda)),
        Box::new(MrioSuffix::new(lambda)),
        Box::new(Rta::new(lambda)),
        Box::new(SortQuer::new(lambda)),
        Box::new(Tps::new(lambda)),
    ];

    for (i, spec) in specs.iter().enumerate() {
        let qid = oracle.register(spec.clone());
        // A per-query seed ladder like the harness's steady-state emulation.
        let seeds: Vec<ScoredDoc> = (0..spec.k)
            .map(|slot| {
                ScoredDoc::new(
                    DocId(u64::MAX / 2 + (i * spec.k + slot) as u64),
                    0.3 * (1.0 - 0.002 * slot as f64) * (1.0 + (i % 7) as f64 * 0.05),
                )
            })
            .collect();
        oracle.seed_results(qid, &seeds);
        for e in engines.iter_mut() {
            let q = e.register(spec.clone());
            assert_eq!(q, qid);
            e.seed_results(q, &seeds);
        }
    }

    let mut driver = StreamDriver::new(corpus(7), ArrivalClock::unit());
    for doc in driver.take_batch(250) {
        oracle.process(&doc);
        for e in engines.iter_mut() {
            e.process(&doc);
        }
    }

    for q in 0..specs.len() as u32 {
        let want = oracle.results(QueryId(q)).unwrap();
        for e in engines.iter() {
            assert_eq!(e.results(QueryId(q)).unwrap(), want, "{} q{q}", e.name());
        }
    }

    // The seeding should have produced a pruning-friendly regime: MRIO must
    // consider dramatically fewer queries than the frequency-ordered RTA.
    let mrio_evals = engines[1].cumulative().full_evaluations;
    let rta_evals = engines[4].cumulative().full_evaluations;
    assert!(
        mrio_evals * 3 < rta_evals,
        "MRIO {mrio_evals} evals vs RTA {rta_evals}: pruning regime not reached"
    );
}

/// The sharded monitor over a realistic workload equals a single engine,
/// and its per-shard change notifications cover exactly the oracle's.
#[test]
fn sharded_monitor_matches_oracle_on_generated_workload() {
    let lambda = 1e-3;
    let specs = specs(QueryWorkload::Uniform, 200, 11);

    let mut sharded = ShardedMonitor::new(4, || MrioSeg::new(lambda));
    let mut oracle = Naive::new(lambda);
    let qids: Vec<QueryId> = specs
        .iter()
        .map(|s| {
            let qid = sharded.register(s.clone());
            assert_eq!(qid, oracle.register(s.clone()), "one monotone public id space");
            qid
        })
        .collect();

    let mut driver = StreamDriver::new(corpus(11), ArrivalClock::Poisson { rate: 2.0 });
    let mut total_changes = 0usize;
    let mut total_updates = 0u64;
    for doc in driver.take_batch(200) {
        let (stats, changes) = sharded.process(doc.clone());
        let oracle_ev = oracle.process(&doc);
        assert_eq!(stats.updates, oracle_ev.updates, "same insertions per event");
        // Changes come back in the public id space, not shard-local ids.
        for (_, change) in &changes {
            assert!(qids.contains(&change.query));
        }
        total_changes += changes.len();
        total_updates += oracle_ev.updates;
    }
    assert_eq!(total_changes as u64, total_updates);

    for qid in &qids {
        assert_eq!(sharded.results(*qid), oracle.results(*qid));
    }
}

/// Snapshot → JSON → restore across *different* engine types: a monitor
/// snapshot taken from MRIO state restores into a RIO engine with identical
/// results and identical downstream behaviour (the snapshot format is
/// engine-agnostic).
#[test]
fn snapshot_restores_across_engine_types() {
    let lambda = 5e-3;
    let specs = specs(QueryWorkload::Connected, 150, 23);

    let mut source = Monitor::new(MrioSeg::new(lambda));
    let qids: Vec<QueryId> = specs.iter().map(|s| source.register(s.clone())).collect();
    let mut driver = StreamDriver::new(corpus(23), ArrivalClock::unit());
    for doc in driver.take_batch(150) {
        source.publish(doc.vector.iter().collect(), doc.arrival);
    }

    let json = source.snapshot().to_json().unwrap();
    let parsed = Snapshot::from_json(&json).unwrap();
    let (mut restored, mapping) = Monitor::restore(Rio::new(lambda), &parsed);

    for qid in &qids {
        assert_eq!(source.results(*qid), restored.results(mapping[qid]), "query {qid}");
    }

    // Both keep evolving identically on the same continuation stream.
    for doc in driver.take_batch(80) {
        let a = source.publish(doc.vector.iter().collect(), doc.arrival);
        let b = restored.publish(doc.vector.iter().collect(), doc.arrival);
        assert_eq!(a.changes.len(), b.changes.len());
    }
    for qid in &qids {
        let a = source.results(*qid).unwrap();
        let b = restored.results(mapping[qid]).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.doc, y.doc);
            assert!((x.score.get() - y.score.get()).abs() < 1e-9);
        }
    }
}

/// Unregistering mid-stream with compaction: after enough churn the index
/// compacts tombstones, and results for survivors must be unaffected.
#[test]
fn heavy_churn_with_generated_workload() {
    let lambda = 0.0;
    let all_specs = specs(QueryWorkload::Connected, 240, 31);

    let mut oracle = Naive::new(lambda);
    let mut mrio = MrioSeg::new(lambda);
    let mut rio = Rio::new(lambda);
    for s in &all_specs {
        oracle.register(s.clone());
        mrio.register(s.clone());
        rio.register(s.clone());
    }

    let mut driver = StreamDriver::new(corpus(31), ArrivalClock::unit());
    // Interleave processing with waves of unregistration.
    for wave in 0..4u32 {
        for doc in driver.take_batch(60) {
            oracle.process(&doc);
            mrio.process(&doc);
            rio.process(&doc);
        }
        // Remove a block of queries.
        for q in (wave * 40)..(wave * 40 + 30) {
            let qid = QueryId(q);
            assert!(oracle.unregister(qid));
            assert!(mrio.unregister(qid));
            assert!(rio.unregister(qid));
        }
    }

    for q in 0..all_specs.len() as u32 {
        let qid = QueryId(q);
        match oracle.results(qid) {
            None => {
                assert!(mrio.results(qid).is_none());
                assert!(rio.results(qid).is_none());
            }
            Some(want) => {
                assert_eq!(mrio.results(qid).unwrap(), want, "MRIO q{q}");
                assert_eq!(rio.results(qid).unwrap(), want, "RIO q{q}");
            }
        }
    }
}
