//! Snapshot format migration: v2 (PR-5, sharded sections, no lifecycle),
//! v1 (PR-2, flat with `landmark`) and v0 (pre-PR-2, flat without
//! `landmark`) captures — checked in as fixtures in the exact on-disk bytes
//! those builds wrote — must keep parsing, migrate into the v3 in-memory
//! form, and restore bit-identically to restoring their own v3
//! re-serialization.

use continuous_topk::prelude::*;

/// Written by the pre-lifecycle sharded build: v2 sections, no
/// namespaces/deadlines/policies.
const V2_FIXTURE: &str = include_str!("fixtures/snapshot_v2.json");

/// Written by the PR-2 build: flat layout, top-level `landmark` (the
/// capture renormalized at arrival 610 before being taken).
const V1_FIXTURE: &str = include_str!("fixtures/snapshot_v1.json");

/// Written by a pre-PR-2 build: flat layout, no `landmark` field (those
/// builds never persisted one). λ = 0, so `landmark = 0` is exact.
const V0_FIXTURE: &str = include_str!("fixtures/snapshot_pre_pr2.json");

/// Restore a snapshot and return each captured query's restored results,
/// in captured-id order.
fn restored_results(snap: &Snapshot, kind: EngineKind) -> Vec<Vec<ScoredDoc>> {
    let (backend, mapping) = MonitorBuilder::new(kind).restore(snap);
    let mut captured: Vec<u32> = snap.queries().map(|q| q.qid).collect();
    captured.sort_unstable();
    captured
        .into_iter()
        .map(|qid| backend.results(mapping[&QueryId(qid)]).expect("restored query is live"))
        .collect()
}

#[test]
fn v2_fixture_migrates_into_the_default_namespace() {
    let snap = Snapshot::from_json(V2_FIXTURE).expect("v2 parses");
    assert_eq!(snap.version, SNAPSHOT_VERSION, "migrated into the current version");
    assert_eq!(snap.shards.len(), 2, "v2 shard sections survive migration");
    assert_eq!(snap.landmark(), 610.0);
    assert_eq!(snap.lambda, 0.1);
    assert_eq!(snap.num_queries(), 3);
    assert_eq!(snap.next_doc, 64);
    // Pre-lifecycle queries land in the default namespace with no TTL.
    assert_eq!(snap.namespaces, vec![String::new()]);
    assert!(snap.policies.is_empty());
    for q in snap.queries() {
        assert_eq!(q.namespace, 0);
        assert_eq!(q.max_age, None);
        assert_eq!(q.deadline, None);
        assert_eq!(q.registered_at, snap.last_arrival);
    }

    // Sections interleave qids (round-robin placement), so order the stored
    // sets by captured id before comparing with the (id-ordered) restore.
    let mut stored: Vec<_> = snap.queries().map(|q| (q.qid, &q.results)).collect();
    stored.sort_unstable_by_key(|&(qid, _)| qid);
    for ((_, stored), restored) in stored.into_iter().zip(restored_results(&snap, EngineKind::Mrio))
    {
        assert_eq!(stored, &restored);
    }
}

#[test]
fn v1_fixture_migrates_with_its_landmark() {
    let snap = Snapshot::from_json(V1_FIXTURE).expect("v1 parses");
    assert_eq!(snap.version, SNAPSHOT_VERSION, "migrated into the current version");
    assert_eq!(snap.shards.len(), 1, "flat capture becomes one section");
    assert_eq!(snap.landmark(), 610.0, "the persisted landmark survives migration");
    assert_eq!(snap.lambda, 0.1);
    assert_eq!(snap.num_queries(), 2);
    assert_eq!(snap.next_doc, 71);

    // The capture's stored result sets come back exactly on restore.
    for (stored, restored) in
        snap.queries().map(|q| &q.results).zip(restored_results(&snap, EngineKind::Mrio))
    {
        assert_eq!(stored, &restored);
    }
}

#[test]
fn v0_fixture_migrates_with_landmark_zero() {
    let snap = Snapshot::from_json(V0_FIXTURE).expect("v0 parses");
    assert_eq!(snap.version, SNAPSHOT_VERSION);
    assert_eq!(snap.shards.len(), 1);
    assert_eq!(snap.landmark(), 0.0, "absent landmark migrates to 0");
    assert_eq!(snap.lambda, 0.0);
    assert_eq!(snap.num_queries(), 2);

    for (stored, restored) in
        snap.queries().map(|q| &q.results).zip(restored_results(&snap, EngineKind::Mrio))
    {
        assert_eq!(stored, &restored);
    }
}

/// Every legacy fixture restores **bit-identically** to restoring its own
/// v3 re-serialization — i.e. migration is exactly "rewrite in v3".
#[test]
fn legacy_fixtures_restore_bit_identically_to_v3() {
    for (name, fixture) in [("v2", V2_FIXTURE), ("v1", V1_FIXTURE), ("v0", V0_FIXTURE)] {
        let migrated = Snapshot::from_json(fixture).expect("legacy parses");
        let v3_text = migrated.to_json().expect("serializes as v3");
        assert!(v3_text.contains("\"version\": 3"), "{name}: re-serialization is tagged v3");
        let reparsed = Snapshot::from_json(&v3_text).expect("v3 parses");

        assert_eq!(reparsed.lambda, migrated.lambda);
        assert_eq!(reparsed.landmark(), migrated.landmark());
        assert_eq!(reparsed.next_doc, migrated.next_doc);
        assert_eq!(reparsed.last_arrival, migrated.last_arrival);
        for kind in [EngineKind::Mrio, EngineKind::Rio] {
            assert_eq!(
                restored_results(&migrated, kind),
                restored_results(&reparsed, kind),
                "{name} via {kind}: legacy restore differs from v3 restore"
            );
        }
    }
}

#[test]
fn future_versions_are_rejected_not_misparsed() {
    let v3 = Snapshot::from_json(V1_FIXTURE).unwrap().to_json().unwrap();
    let v4 = v3.replace("\"version\": 3", "\"version\": 4");
    let err = Snapshot::from_json(&v4).expect_err("a future format must not silently parse");
    assert!(err.to_string().contains("version"), "unhelpful error: {err}");
}

#[test]
fn garbage_is_an_error_not_a_panic() {
    assert!(Snapshot::from_json("{\"hello\": 1}").is_err());
    assert!(Snapshot::from_json("not json").is_err());
}
