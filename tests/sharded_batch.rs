//! Randomized equivalence of the batched sharded ingestion path, in both
//! sharding modes.
//!
//! A `ShardedMonitor` fed through `process_batch` must stay
//! **bit-identical** to a single `Naive` engine fed one document at a time
//! — including while queries register and unregister mid-stream:
//!
//! * **query mode** (`Naive` shards): each query's score accumulates from
//!   its own registration record, so partitioning queries across shards
//!   must not change a single bit of any result;
//! * **document mode**: workers walk a shared index epoch and candidates
//!   are merged serially in stream order, so partitioning the *batch*
//!   across shards (including through the threshold candidate filter, the
//!   zone-maxima bounded walk, and threshold-triggered compaction) must
//!   not change a single bit either.
//!
//! Since the sharded monitor allocates public ids from one monotone space,
//! the same registration sequence yields the *same* `QueryId`s on both
//! front-ends — the test addresses both with one handle.
//!
//! The merged-stat invariant is checked alongside, and it distinguishes the
//! modes: in query mode every document visits every shard exactly once
//! (each shard reports `events == docs`, summed `docs × shards`); in
//! document mode every document visits exactly one shard (the per-shard
//! counters sum to `docs`).

use continuous_topk::prelude::*;
use proptest::prelude::*;

type RawVec = Vec<(u32, f32)>;

fn make_spec(terms: &RawVec, k: usize) -> Option<QuerySpec> {
    QuerySpec::new(terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), k).ok()
}

proptest! {
    // Each case spins up `shards` worker threads; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_sharded_ingestion_with_churn_matches_naive(
        mode in prop::sample::select(vec![ShardingMode::Queries, ShardingMode::Documents]),
        shards in 2usize..5,
        batch_size in 1usize..9,
        initial in prop::collection::vec(
            (prop::collection::vec((0u32..40, 0.1f32..2.0), 1..4), 1usize..4),
            4..16,
        ),
        rounds in prop::collection::vec(
            (
                // This round's documents.
                prop::collection::vec(prop::collection::vec((0u32..40, 0.1f32..2.0), 1..8), 1..12),
                // Churn: a candidate registration, applied when gate > 0...
                (prop::collection::vec((0u32..40, 0.1f32..2.0), 1..4), 1usize..4),
                0usize..3,
                // ...and an unregister slot: live[idx % (len + 1)], where
                // landing on `len` means "no unregister this round".
                0usize..64,
            ),
            1..6,
        ),
        lambda in prop::sample::select(vec![0.0, 0.05, 0.8]),
        pruning in prop::sample::select(vec![DocPruning::Off, DocPruning::On]),
        compact_at in prop::sample::select(vec![0.0, 0.2]),
        storage in prop::sample::select(vec![
            PostingsStorage::Plain,
            PostingsStorage::Compressed,
            PostingsStorage::Paged,
        ]),
    ) {
        // Tiny pager budget: paged cases must spill (and fault pages back)
        // mid-stream rather than staying effectively RAM-resident. The
        // oracle always runs plain storage — the claim under test is that
        // the backend is invisible to results.
        let storage_cfg =
            StorageConfig { storage, page_budget_bytes: 2048, spill_dir: None };
        let mut sharded = match mode {
            ShardingMode::Queries => {
                ShardedMonitor::new(shards, || Naive::with_storage(lambda, &storage_cfg))
            }
            ShardingMode::Documents => {
                let mut m = ShardedMonitor::new_doc_parallel_with(shards, lambda, &storage_cfg);
                m.set_doc_pruning(pruning);
                m
            }
        };
        sharded.set_compaction_threshold(compact_at);
        let mut single = Naive::new(lambda);
        // Live queries: one public id addresses both front-ends.
        let mut live: Vec<QueryId> = Vec::new();

        for (terms, k) in &initial {
            if let Some(spec) = make_spec(terms, *k) {
                let qid = sharded.register(spec.clone());
                prop_assert_eq!(qid, single.register(spec), "one monotone public id space");
                live.push(qid);
            }
        }
        prop_assume!(!live.is_empty());

        let mut next_doc = 0u64;
        let mut total_docs = 0u64;
        for (doc_batches, (reg_terms, reg_k), reg_gate, unreg_slot) in &rounds {
            let slot = unreg_slot % (live.len() + 1);
            if slot < live.len() {
                let qid = live.remove(slot);
                prop_assert!(sharded.unregister(qid));
                prop_assert!(single.unregister(qid));
            }
            if *reg_gate > 0 {
                if let Some(spec) = make_spec(reg_terms, *reg_k) {
                    let qid = sharded.register(spec.clone());
                    prop_assert_eq!(qid, single.register(spec));
                    live.push(qid);
                }
            }

            let docs: Vec<Document> = doc_batches
                .iter()
                .map(|pairs| {
                    let d = Document::new(
                        DocId(next_doc),
                        pairs.iter().map(|&(t, w)| (TermId(t), w)).collect(),
                        next_doc as f64,
                    );
                    next_doc += 1;
                    d
                })
                .collect();
            total_docs += docs.len() as u64;

            for d in &docs {
                single.process(d);
            }
            for chunk in docs.chunks(batch_size) {
                let (stats, _changes) = sharded.process_batch(chunk.to_vec());
                prop_assert_eq!(stats.len(), chunk.len());
            }
        }

        // Bit-identical results for every surviving query.
        for qid in &live {
            prop_assert_eq!(
                sharded.results(*qid),
                single.results(*qid),
                "mode {:?}, storage {:?}, query {:?}",
                mode,
                storage,
                qid
            );
        }

        // Merged-stat consistency, per mode.
        let per_shard = sharded.shard_cumulative();
        prop_assert_eq!(per_shard.len(), shards);
        let summed: u64 = per_shard.iter().map(|c| c.events).sum();
        match mode {
            ShardingMode::Queries => {
                // Every shard processed every document.
                for cum in &per_shard {
                    prop_assert_eq!(cum.events, total_docs);
                }
                prop_assert_eq!(summed, total_docs * shards as u64);
            }
            ShardingMode::Documents => {
                // Every document was scored by exactly one shard.
                prop_assert_eq!(summed, total_docs);
                let sum = |f: fn(&CumulativeStats) -> u64| per_shard.iter().map(f).sum::<u64>();
                let walked = sum(|c| c.postings_accessed);
                let skipped = sum(|c| c.postings_skipped);
                let evals = sum(|c| c.full_evaluations);
                let oracle = single.cumulative();
                match pruning {
                    DocPruning::Off | DocPruning::Auto => {
                        // The exhaustive walk *is* the oracle's walk,
                        // parallelized: counters match exactly and nothing
                        // is ever skipped. (Auto stays exhaustive at these
                        // populations.)
                        prop_assert_eq!(walked, oracle.postings_accessed);
                        prop_assert_eq!(evals, oracle.full_evaluations);
                        prop_assert_eq!(skipped, 0);
                        prop_assert_eq!(sum(|c| c.zones_skipped), 0);
                    }
                    DocPruning::On => {
                        // The bounded walk may only *shift* work from reads
                        // into proven skips — and insertions are
                        // walk-independent.
                        prop_assert!(walked <= oracle.postings_accessed);
                        prop_assert!(walked + skipped >= oracle.postings_accessed);
                        prop_assert!(evals <= oracle.full_evaluations);
                        prop_assert_eq!(sum(|c| c.updates), oracle.updates);
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Adaptive AIMD chunking must be invisible in results: a monitor whose
    /// chunk size breathes with drain latency stays bit-identical to a
    /// fixed-window monitor *and* to the serial `Naive` oracle — in both
    /// sharding modes, through register/unregister churn and a
    /// renorm-capable λ — because chunking is result-invariant.
    ///
    /// The sampled `target_drain_ms` deliberately includes the two
    /// degenerate controllers: `0.0` (every drain is "too slow", the chunk
    /// collapses to `min_chunk`) and `∞` (every drain is "fast", the chunk
    /// climbs to the max) — so the equivalence is exercised across the
    /// controller's whole reachable schedule space, not just its fixpoint.
    #[test]
    fn adaptive_batching_matches_fixed_window_and_naive(
        mode in prop::sample::select(vec![ShardingMode::Queries, ShardingMode::Documents]),
        shards in 2usize..4,
        fixed_batch in 1usize..9,
        target_ms in prop::sample::select(vec![0.0f64, 5.0, f64::INFINITY]),
        min_chunk in 1usize..4,
        span in 0usize..6,
        step in 1usize..32,
        initial in prop::collection::vec(
            (prop::collection::vec((0u32..40, 0.1f32..2.0), 1..4), 1usize..4),
            4..12,
        ),
        rounds in prop::collection::vec(
            (
                // This round's documents.
                prop::collection::vec(prop::collection::vec((0u32..40, 0.1f32..2.0), 1..6), 1..12),
                // Churn: a candidate registration, applied when gate > 0...
                (prop::collection::vec((0u32..40, 0.1f32..2.0), 1..4), 1usize..4),
                0usize..3,
                // ...and an unregister slot (== len means "skip").
                0usize..64,
            ),
            2..6,
        ),
        lambda in prop::sample::select(vec![0.0, 0.8]),
    ) {
        let cfg = AdaptiveConfig::default()
            .target_drain_ms(target_ms)
            .chunk_bounds(min_chunk, min_chunk + span)
            .increase_step(step);
        let build = |adaptive: bool| {
            let mut m = match mode {
                ShardingMode::Queries => ShardedMonitor::new(shards, move || Naive::new(lambda)),
                ShardingMode::Documents => ShardedMonitor::new_doc_parallel(shards, lambda),
            };
            if adaptive {
                m.set_adaptive_batching(cfg);
            } else {
                m.set_ingest_chunking(fixed_batch, 1);
            }
            m
        };
        let mut adaptive = build(true);
        let mut fixed = build(false);
        let mut single = Naive::new(lambda);
        let mut live: Vec<QueryId> = Vec::new();

        for (terms, k) in &initial {
            if let Some(spec) = make_spec(terms, *k) {
                let qid = adaptive.register(spec.clone());
                prop_assert_eq!(qid, fixed.register(spec.clone()));
                prop_assert_eq!(qid, single.register(spec));
                live.push(qid);
            }
        }
        prop_assume!(!live.is_empty());

        // Arrivals advance 2.0 per document so the λ = 0.8 cases can cross
        // the renormalization headroom mid-stream.
        let mut last_arrival = 0.0f64;
        let mut next_doc = 0u64;
        for (doc_batches, (reg_terms, reg_k), reg_gate, unreg_slot) in &rounds {
            let slot = unreg_slot % (live.len() + 1);
            if slot < live.len() {
                let qid = live.remove(slot);
                prop_assert!(adaptive.unregister(qid));
                prop_assert!(fixed.unregister(qid));
                prop_assert!(single.unregister(qid));
            }
            if *reg_gate > 0 {
                if let Some(spec) = make_spec(reg_terms, *reg_k) {
                    let qid = adaptive.register(spec.clone());
                    prop_assert_eq!(qid, fixed.register(spec.clone()));
                    prop_assert_eq!(qid, single.register(spec));
                    live.push(qid);
                }
            }

            let batch: Vec<(Vec<(TermId, f32)>, f64)> = doc_batches
                .iter()
                .map(|pairs| {
                    last_arrival += 2.0;
                    (
                        pairs.iter().map(|&(t, w)| (TermId(t), w)).collect::<Vec<_>>(),
                        last_arrival,
                    )
                })
                .collect();
            let base = next_doc;
            next_doc += batch.len() as u64;
            for (i, (pairs, at)) in batch.iter().enumerate() {
                single.process(&Document::new(DocId(base + i as u64), pairs.clone(), *at));
            }
            let receipt_a = adaptive.publish_batch(batch.clone());
            let receipt_f = fixed.publish_batch(batch);

            // Same documents admitted; same changes. The emission *order*
            // of changes legitimately varies with chunk boundaries, so
            // compare as sets via a canonical sort. (Per-document work
            // stats may differ too: document mode freezes pruning bounds
            // per chunk, so a different chunking walks differently — but
            // never to different results.)
            prop_assert_eq!(&receipt_a.doc_ids, &receipt_f.doc_ids);
            let canon = |mut changes: Vec<ResultChange>| {
                changes.sort_by(|a, b| {
                    (a.query, a.inserted.doc).cmp(&(b.query, b.inserted.doc))
                });
                changes
            };
            prop_assert_eq!(canon(receipt_a.changes), canon(receipt_f.changes));

            // The controller never leaves its configured bounds.
            let chunk = adaptive.adaptive_chunk().expect("controller installed");
            prop_assert!((min_chunk..=min_chunk + span).contains(&chunk));
            prop_assert_eq!(fixed.adaptive_chunk(), None);
        }

        for qid in &live {
            let want = single.results(*qid);
            prop_assert_eq!(adaptive.results(*qid), want.clone(), "adaptive vs oracle: {:?}", qid);
            prop_assert_eq!(fixed.results(*qid), want, "fixed vs oracle: {:?}", qid);
        }
    }
}

/// One namespace's sampled retention setup for the lifecycle proptest.
#[derive(Debug, Clone)]
struct NsSetup {
    max_age: Option<f64>,
    max_queries: Option<u64>,
    eviction: EvictionPolicy,
}

/// The oracle's replica of the lifecycle rules: who belongs where, when
/// each query dies, what has been counted. Everything it does to the
/// `Naive` engine is an explicit `unregister` at a batch boundary — the
/// exact claim under test is that the monitor's expiry/eviction is nothing
/// more than that.
struct LifecycleOracle {
    /// Per live query: `(namespace index, deadline)`.
    meta: std::collections::HashMap<QueryId, (usize, Option<f64>)>,
    expired: u64,
    evicted: u64,
}

impl LifecycleOracle {
    fn members(&self, ns: usize) -> Vec<QueryId> {
        let mut m: Vec<QueryId> =
            self.meta.iter().filter(|(_, &(n, _))| n == ns).map(|(&q, _)| q).collect();
        m.sort_unstable();
        m
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// TTL expiry and cap eviction, in both sharding modes, must be
    /// bit-identical to an oracle that explicitly unregisters the same
    /// queries at the same publish boundaries — including across a
    /// snapshot-v3 round trip into a *different* backend configuration.
    #[test]
    fn lifecycle_matches_an_explicitly_unregistering_oracle(
        mode in prop::sample::select(vec![ShardingMode::Queries, ShardingMode::Documents]),
        shards in 2usize..4,
        setups in prop::collection::vec(
            (
                prop::option::of(4.0f64..30.0),
                prop::option::of(1u64..4),
                prop::sample::select(vec![EvictionPolicy::Oldest, EvictionPolicy::LowestScore]),
            ),
            1..4,
        ),
        initial in prop::collection::vec(
            // (terms, k, namespace slot, per-query TTL override)
            (
                prop::collection::vec((0u32..30, 0.1f32..2.0), 1..4),
                1usize..4,
                0usize..8,
                prop::option::of(3.0f64..25.0),
            ),
            3..10,
        ),
        rounds in prop::collection::vec(
            (
                // This round's documents (arrivals advance 1.0 per doc).
                prop::collection::vec(prop::collection::vec((0u32..30, 0.1f32..2.0), 1..6), 1..8),
                // A candidate registration, applied when gate > 0.
                (
                    prop::collection::vec((0u32..30, 0.1f32..2.0), 1..4),
                    1usize..4,
                    0usize..8,
                    prop::option::of(3.0f64..25.0),
                ),
                0usize..3,
            ),
            2..7,
        ),
        lambda in prop::sample::select(vec![0.0, 0.05]),
    ) {
        let setups: Vec<NsSetup> = setups
            .into_iter()
            .map(|(max_age, max_queries, eviction)| NsSetup { max_age, max_queries, eviction })
            .collect();
        let mut sharded = match mode {
            ShardingMode::Queries => ShardedMonitor::new(shards, || Naive::new(lambda)),
            ShardingMode::Documents => ShardedMonitor::new_doc_parallel(shards, lambda),
        };
        let mut single = Naive::new(lambda);
        let mut oracle =
            LifecycleOracle { meta: std::collections::HashMap::new(), expired: 0, evicted: 0 };

        // Install every policy up front (no members yet, so nothing evicts).
        let handles: Vec<Namespace> = setups
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let ns = sharded.intern_namespace(&format!("ns{i}"));
                sharded.set_retention(
                    ns,
                    RetentionPolicy {
                        max_age: s.max_age,
                        max_queries: s.max_queries,
                        eviction: s.eviction,
                    },
                );
                ns
            })
            .collect();

        let mut last_arrival = 0.0f64;
        let mut next_doc = 0u64;
        let mut receipt_expired = 0u64;

        // Register on both front-ends, replicate deadline + cap eviction on
        // the oracle with explicit unregisters.
        let register =
            |sharded: &mut ShardedMonitor,
             single: &mut Naive,
             oracle: &mut LifecycleOracle,
             terms: &RawVec,
             k: usize,
             slot: usize,
             ttl: Option<f64>,
             last_arrival: f64|
             -> Option<QueryId> {
                let spec = make_spec(terms, k)?;
                let ns_idx = slot % setups.len();
                let qid = sharded.register_with(
                    spec.clone(),
                    QueryOptions { namespace: handles[ns_idx], max_age: ttl },
                );
                assert_eq!(qid, single.register(spec), "one monotone public id space");
                let setup = &setups[ns_idx];
                let deadline = ttl.or(setup.max_age).map(|age| last_arrival + age);
                oracle.meta.insert(qid, (ns_idx, deadline));
                if let Some(cap) = setup.max_queries {
                    loop {
                        let members = oracle.members(ns_idx);
                        if members.len() as u64 <= cap {
                            break;
                        }
                        let candidates: Vec<QueryId> =
                            members.into_iter().filter(|&q| q != qid).collect();
                        let victim = match setup.eviction {
                            EvictionPolicy::Oldest => candidates[0],
                            EvictionPolicy::LowestScore => *candidates
                                .iter()
                                .min_by(|&&a, &&b| {
                                    let top = |q: QueryId| {
                                        single
                                            .results(q)
                                            .and_then(|r| r.first().map(|sd| sd.score.get()))
                                            .unwrap_or(0.0)
                                    };
                                    (top(a), a).partial_cmp(&(top(b), b)).unwrap()
                                })
                                .unwrap(),
                        };
                        assert!(single.unregister(victim));
                        oracle.meta.remove(&victim);
                        oracle.evicted += 1;
                    }
                }
                Some(qid)
            };

        for (terms, k, slot, ttl) in &initial {
            register(&mut sharded, &mut single, &mut oracle, terms, *k, *slot, *ttl, last_arrival);
        }
        prop_assume!(!oracle.meta.is_empty());

        for (doc_batches, (reg_terms, reg_k, reg_slot, reg_ttl), reg_gate) in &rounds {
            // Publish boundary: the oracle expires first — strictly-before
            // the batch's first arrival, exactly the monitor's rule.
            let first_arrival = last_arrival + 1.0;
            let mut due: Vec<QueryId> = oracle
                .meta
                .iter()
                .filter(|(_, &(_, dl))| dl.is_some_and(|dl| dl < first_arrival))
                .map(|(&q, _)| q)
                .collect();
            due.sort_unstable();
            for qid in due {
                assert!(single.unregister(qid));
                oracle.meta.remove(&qid);
                oracle.expired += 1;
            }

            let batch: Vec<(Vec<(TermId, f32)>, f64)> = doc_batches
                .iter()
                .map(|pairs| {
                    last_arrival += 1.0;
                    next_doc += 1;
                    (
                        pairs.iter().map(|&(t, w)| (TermId(t), w)).collect::<Vec<_>>(),
                        last_arrival,
                    )
                })
                .collect();
            let base = next_doc - batch.len() as u64;
            for (i, (pairs, at)) in batch.iter().enumerate() {
                single.process(&Document::new(DocId(base + i as u64), pairs.clone(), *at));
            }
            let receipt = sharded.publish_batch(batch);
            receipt_expired += receipt.stats.iter().map(|s| s.expired).sum::<u64>();

            if *reg_gate > 0 {
                register(
                    &mut sharded, &mut single, &mut oracle, reg_terms, *reg_k, *reg_slot,
                    *reg_ttl, last_arrival,
                );
            }
        }

        // Bit-identical results for every survivor; the dead are dead on
        // both sides.
        for &qid in oracle.meta.keys() {
            prop_assert_eq!(
                sharded.results(qid),
                single.results(qid),
                "mode {:?}, query {:?}",
                mode,
                qid
            );
        }
        prop_assert_eq!(sharded.num_queries(), oracle.meta.len());
        prop_assert_eq!(
            MonitorBackend::lifecycle_totals(&sharded),
            (oracle.expired, oracle.evicted)
        );
        // Every expiry was attributed to the (non-empty) publish that
        // triggered it.
        prop_assert_eq!(receipt_expired, oracle.expired);

        // Snapshot-v3 round trip into the *other* mode and a different
        // shard count: results, policies and deadlines must all survive.
        let snap = MonitorBackend::snapshot(&sharded);
        prop_assert_eq!(snap.version, SNAPSHOT_VERSION);
        let other = MonitorBuilder::new(EngineKind::Mrio)
            .lambda(lambda)
            .shards(if shards == 2 { 3 } else { 2 })
            .sharding(match mode {
                ShardingMode::Queries => ShardingMode::Documents,
                ShardingMode::Documents => ShardingMode::Queries,
            });
        let (mut restored, mapping) = other.restore(&snap);
        let mut live: Vec<QueryId> = oracle.meta.keys().copied().collect();
        live.sort_unstable();
        for &qid in &live {
            prop_assert_eq!(restored.results(mapping[&qid]), sharded.results(qid));
        }
        for (i, s) in setups.iter().enumerate() {
            let ns = restored.find_namespace(&format!("ns{i}"));
            prop_assert!(ns.is_some(), "policy namespaces survive the round trip");
            let policy = restored.retention(ns.unwrap());
            prop_assert_eq!(policy.map(|p| (p.max_age, p.max_queries)),
                Some((s.max_age, s.max_queries)));
        }
        // A far-future publish expires the same queries on both sides:
        // deadlines survived the round trip bit-exactly.
        let late = vec![(vec![(TermId(0), 1.0)], last_arrival + 1000.0)];
        sharded.publish_batch(late.clone());
        restored.publish_batch(late);
        for &qid in &live {
            prop_assert_eq!(
                restored.results(mapping[&qid]).is_some(),
                sharded.results(qid).is_some(),
                "query {:?} must be alive (or dead) on both sides",
                qid
            );
        }
    }
}

/// The satellite scenario in one deterministic test: a four-digit query
/// population with tight thresholds, register/unregister churn, a λ = 0.5
/// renormalization crossing and threshold-triggered compaction — the
/// bounded walk must stay bit-identical to the oracle *and* demonstrably
/// skip work.
#[test]
fn bounded_walk_skips_at_scale_while_staying_bit_identical() {
    let lambda = 0.5;
    let mut sharded = ShardedMonitor::new_doc_parallel(3, lambda);
    sharded.set_doc_pruning(DocPruning::On);
    sharded.set_compaction_threshold(0.15);
    let mut single = Naive::new(lambda);

    // A homogeneous block of queries over two hot terms (contiguous ids ⇒
    // homogeneous zones), plus a fringe over rarer terms.
    let mut live: Vec<QueryId> = Vec::new();
    for i in 0..1200u32 {
        let spec = if i % 4 == 3 {
            QuerySpec::uniform(&[TermId(1), TermId(10 + i % 7)], 1).unwrap()
        } else {
            QuerySpec::uniform(&[TermId(1), TermId(2)], 1).unwrap()
        };
        let qid = sharded.register(spec.clone());
        assert_eq!(qid, single.register(spec));
        live.push(qid);
    }

    // Each round: one perfect match re-tightens every threshold, then a
    // burst of weak documents arrives *shortly after* it — under λ = 0.5
    // a 4.5×-weaker document only overtakes a strong incumbent once
    // e^(λ·Δτ) exceeds the strength ratio (Δτ ≈ 7.5), so the sub-unit
    // burst spacing keeps every weak document refutable. Rounds advance
    // the clock 16 units, so round 8 crosses the λ·Δτ > 60
    // renormalization headroom (t > 120) mid-stream.
    let mut next_doc = 0u64;
    let mut all_changes_sharded: Vec<ResultChange> = Vec::new();
    let mut all_changes_single: Vec<ResultChange> = Vec::new();
    let mk = |terms: &[(u32, f32)], at: f64, next: &mut u64| {
        let d =
            Document::new(DocId(*next), terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), at);
        *next += 1;
        d
    };
    for round in 0..10u64 {
        // Churn between batches: retire a slab (tombstones for compaction).
        if round > 0 {
            for _ in 0..25 {
                let qid = live.remove((round as usize * 7) % live.len());
                assert!(sharded.unregister(qid));
                assert!(single.unregister(qid));
            }
        }
        // The perfect match goes through as its own batch so the weak
        // burst's submit-time snapshot (filter AND frozen bounds) already
        // reflects the tightened thresholds.
        let t0 = round as f64 * 16.0;
        let strong = vec![mk(&[(1, 1.0), (2, 1.0)], t0, &mut next_doc)];
        let weak: Vec<Document> = (0..19)
            .map(|i| mk(&[(1, 0.1), (9, 3.0)], t0 + 0.05 * (i + 1) as f64, &mut next_doc))
            .collect();
        for batch in [strong, weak] {
            for d in &batch {
                single.process(d);
                all_changes_single.extend_from_slice(single.last_changes());
            }
            let (_, ch) = sharded.process_batch(batch);
            all_changes_sharded.extend(ch.into_iter().map(|(_, c)| c));
        }
    }
    assert!(single.cumulative().renormalizations > 0, "the stream must cross a renorm");

    // Bit-identical outcomes...
    assert_eq!(all_changes_sharded, all_changes_single);
    for qid in &live {
        assert_eq!(sharded.results(*qid), single.results(*qid), "query {qid}");
    }
    // ...with real skipping on the books, and the conservation law intact.
    let per_shard = sharded.shard_cumulative();
    let sum = |f: fn(&CumulativeStats) -> u64| per_shard.iter().map(f).sum::<u64>();
    assert!(sum(|c| c.zones_skipped) > 0, "tight thresholds must let zones skip");
    assert!(sum(|c| c.postings_accessed) < single.cumulative().postings_accessed);
    assert!(
        sum(|c| c.postings_accessed) + sum(|c| c.postings_skipped)
            >= single.cumulative().postings_accessed
    );
    assert_eq!(sum(|c| c.updates), single.cumulative().updates);
}

/// The storage-subsystem scenario in one deterministic test: every postings
/// backend (plain Vec, compressed blocks, RAM/disk paged with a budget tiny
/// enough to force spills), in both sharding modes, driven through
/// registration churn, threshold-triggered compaction and a λ = 0.5
/// renormalization crossing — all against one plain-storage `Naive` oracle.
/// Results must stay bit-identical: the storage layer is a representation
/// choice, never a semantics choice.
#[test]
fn storage_backends_stay_bit_identical_across_compaction_and_renorm() {
    let lambda = 0.5;
    let mk = |terms: &[(u32, f32)], id: u64, at: f64| {
        Document::new(DocId(id), terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), at)
    };
    for storage in PostingsStorage::ALL {
        for mode in [ShardingMode::Queries, ShardingMode::Documents] {
            let cfg = StorageConfig { storage, page_budget_bytes: 1024, spill_dir: None };
            let mut sharded = match mode {
                ShardingMode::Queries => {
                    ShardedMonitor::new(2, || Naive::with_storage(lambda, &cfg))
                }
                ShardingMode::Documents => ShardedMonitor::new_doc_parallel_with(2, lambda, &cfg),
            };
            sharded.set_compaction_threshold(0.15);
            let mut single = Naive::new(lambda);

            // Two hot terms shared by most queries (their lists seal many
            // blocks) plus a fringe of short lists that never seal.
            let mut live: Vec<QueryId> = Vec::new();
            for i in 0..600u32 {
                let spec = if i % 4 == 3 {
                    QuerySpec::uniform(&[TermId(1), TermId(10 + i % 7)], 1).unwrap()
                } else {
                    QuerySpec::uniform(&[TermId(1), TermId(2)], 1).unwrap()
                };
                let qid = sharded.register(spec.clone());
                assert_eq!(qid, single.register(spec));
                live.push(qid);
            }

            // Rounds advance the clock 16 units; round 8 crosses the
            // λ·Δτ > 60 renormalization headroom (t > 120) mid-stream, and
            // per-round unregister slabs push tombstone ratios over the
            // compaction threshold — so sealed blocks get re-encoded while
            // the stream is still running.
            let mut next_doc = 0u64;
            for round in 0..9u64 {
                if round > 0 {
                    for _ in 0..20 {
                        let qid = live.remove((round as usize * 7) % live.len());
                        assert!(sharded.unregister(qid));
                        assert!(single.unregister(qid));
                    }
                }
                let t0 = round as f64 * 16.0;
                let docs: Vec<Document> = (0..12)
                    .map(|i| {
                        let d = if i % 3 == 0 {
                            mk(&[(1, 1.0), (2, 1.0)], next_doc, t0 + 0.1 * i as f64)
                        } else {
                            mk(&[(1, 0.2), (12, 2.0)], next_doc, t0 + 0.1 * i as f64)
                        };
                        next_doc += 1;
                        d
                    })
                    .collect();
                for d in &docs {
                    single.process(d);
                }
                sharded.process_batch(docs);
            }
            assert!(single.cumulative().renormalizations > 0, "stream must cross a renorm");

            for qid in &live {
                assert_eq!(
                    sharded.results(*qid),
                    single.results(*qid),
                    "storage {storage}, mode {mode:?}, query {qid}"
                );
            }
            let stats = sharded.storage_stats();
            assert!(stats.index_bytes > 0);
            if storage == PostingsStorage::Paged {
                assert!(stats.cold_pages > 0, "1 KiB budget must spill sealed blocks");
                assert!(stats.page_faults > 0, "the walk must fault spilled blocks back in");
            }
        }
    }
}
