//! Randomized equivalence of the batched sharded ingestion path.
//!
//! A `ShardedMonitor` built from `Naive` shards, fed through
//! `process_batch`, must stay **bit-identical** to a single `Naive` engine
//! fed one document at a time — including while queries register and
//! unregister mid-stream. (Each query's score accumulates from its own
//! registration record, so partitioning queries across shards must not
//! change a single bit of any result.)
//!
//! Since the sharded monitor allocates public ids from one monotone space,
//! the same registration sequence yields the *same* `QueryId`s on both
//! front-ends — the test addresses both with one handle.
//!
//! The merged-stat invariant is checked alongside: every document visits
//! every shard exactly once, so the summed per-shard event counters equal
//! `documents × shards`.

use continuous_topk::prelude::*;
use proptest::prelude::*;

type RawVec = Vec<(u32, f32)>;

fn make_spec(terms: &RawVec, k: usize) -> Option<QuerySpec> {
    QuerySpec::new(terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), k).ok()
}

proptest! {
    // Each case spins up `shards` worker threads; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_sharded_ingestion_with_churn_matches_naive(
        shards in 2usize..5,
        batch_size in 1usize..9,
        initial in prop::collection::vec(
            (prop::collection::vec((0u32..40, 0.1f32..2.0), 1..4), 1usize..4),
            4..16,
        ),
        rounds in prop::collection::vec(
            (
                // This round's documents.
                prop::collection::vec(prop::collection::vec((0u32..40, 0.1f32..2.0), 1..8), 1..12),
                // Churn: a candidate registration, applied when gate > 0...
                (prop::collection::vec((0u32..40, 0.1f32..2.0), 1..4), 1usize..4),
                0usize..3,
                // ...and an unregister slot: live[idx % (len + 1)], where
                // landing on `len` means "no unregister this round".
                0usize..64,
            ),
            1..6,
        ),
        lambda in prop::sample::select(vec![0.0, 0.05, 0.8]),
    ) {
        let mut sharded = ShardedMonitor::new(shards, || Naive::new(lambda));
        let mut single = Naive::new(lambda);
        // Live queries: one public id addresses both front-ends.
        let mut live: Vec<QueryId> = Vec::new();

        for (terms, k) in &initial {
            if let Some(spec) = make_spec(terms, *k) {
                let qid = sharded.register(spec.clone());
                prop_assert_eq!(qid, single.register(spec), "one monotone public id space");
                live.push(qid);
            }
        }
        prop_assume!(!live.is_empty());

        let mut next_doc = 0u64;
        let mut total_docs = 0u64;
        for (doc_batches, (reg_terms, reg_k), reg_gate, unreg_slot) in &rounds {
            let slot = unreg_slot % (live.len() + 1);
            if slot < live.len() {
                let qid = live.remove(slot);
                prop_assert!(sharded.unregister(qid));
                prop_assert!(single.unregister(qid));
            }
            if *reg_gate > 0 {
                if let Some(spec) = make_spec(reg_terms, *reg_k) {
                    let qid = sharded.register(spec.clone());
                    prop_assert_eq!(qid, single.register(spec));
                    live.push(qid);
                }
            }

            let docs: Vec<Document> = doc_batches
                .iter()
                .map(|pairs| {
                    let d = Document::new(
                        DocId(next_doc),
                        pairs.iter().map(|&(t, w)| (TermId(t), w)).collect(),
                        next_doc as f64,
                    );
                    next_doc += 1;
                    d
                })
                .collect();
            total_docs += docs.len() as u64;

            for d in &docs {
                single.process(d);
            }
            for chunk in docs.chunks(batch_size) {
                let (stats, _changes) = sharded.process_batch(chunk.to_vec());
                prop_assert_eq!(stats.len(), chunk.len());
            }
        }

        // Bit-identical results for every surviving query.
        for qid in &live {
            prop_assert_eq!(
                sharded.results(*qid),
                single.results(*qid),
                "query {:?}",
                qid
            );
        }

        // Merged-stat consistency: every shard processed every document.
        let per_shard = sharded.shard_cumulative();
        prop_assert_eq!(per_shard.len(), shards);
        for cum in &per_shard {
            prop_assert_eq!(cum.events, total_docs);
        }
        let summed: u64 = per_shard.iter().map(|c| c.events).sum();
        prop_assert_eq!(summed, total_docs * shards as u64);
    }
}
