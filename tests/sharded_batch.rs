//! Randomized equivalence of the batched sharded ingestion path, in both
//! sharding modes.
//!
//! A `ShardedMonitor` fed through `process_batch` must stay
//! **bit-identical** to a single `Naive` engine fed one document at a time
//! — including while queries register and unregister mid-stream:
//!
//! * **query mode** (`Naive` shards): each query's score accumulates from
//!   its own registration record, so partitioning queries across shards
//!   must not change a single bit of any result;
//! * **document mode**: workers walk a shared index epoch and candidates
//!   are merged serially in stream order, so partitioning the *batch*
//!   across shards (including through the threshold candidate filter) must
//!   not change a single bit either.
//!
//! Since the sharded monitor allocates public ids from one monotone space,
//! the same registration sequence yields the *same* `QueryId`s on both
//! front-ends — the test addresses both with one handle.
//!
//! The merged-stat invariant is checked alongside, and it distinguishes the
//! modes: in query mode every document visits every shard exactly once
//! (each shard reports `events == docs`, summed `docs × shards`); in
//! document mode every document visits exactly one shard (the per-shard
//! counters sum to `docs`).

use continuous_topk::prelude::*;
use proptest::prelude::*;

type RawVec = Vec<(u32, f32)>;

fn make_spec(terms: &RawVec, k: usize) -> Option<QuerySpec> {
    QuerySpec::new(terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), k).ok()
}

proptest! {
    // Each case spins up `shards` worker threads; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_sharded_ingestion_with_churn_matches_naive(
        mode in prop::sample::select(vec![ShardingMode::Queries, ShardingMode::Documents]),
        shards in 2usize..5,
        batch_size in 1usize..9,
        initial in prop::collection::vec(
            (prop::collection::vec((0u32..40, 0.1f32..2.0), 1..4), 1usize..4),
            4..16,
        ),
        rounds in prop::collection::vec(
            (
                // This round's documents.
                prop::collection::vec(prop::collection::vec((0u32..40, 0.1f32..2.0), 1..8), 1..12),
                // Churn: a candidate registration, applied when gate > 0...
                (prop::collection::vec((0u32..40, 0.1f32..2.0), 1..4), 1usize..4),
                0usize..3,
                // ...and an unregister slot: live[idx % (len + 1)], where
                // landing on `len` means "no unregister this round".
                0usize..64,
            ),
            1..6,
        ),
        lambda in prop::sample::select(vec![0.0, 0.05, 0.8]),
    ) {
        let mut sharded = match mode {
            ShardingMode::Queries => ShardedMonitor::new(shards, || Naive::new(lambda)),
            ShardingMode::Documents => ShardedMonitor::new_doc_parallel(shards, lambda),
        };
        let mut single = Naive::new(lambda);
        // Live queries: one public id addresses both front-ends.
        let mut live: Vec<QueryId> = Vec::new();

        for (terms, k) in &initial {
            if let Some(spec) = make_spec(terms, *k) {
                let qid = sharded.register(spec.clone());
                prop_assert_eq!(qid, single.register(spec), "one monotone public id space");
                live.push(qid);
            }
        }
        prop_assume!(!live.is_empty());

        let mut next_doc = 0u64;
        let mut total_docs = 0u64;
        for (doc_batches, (reg_terms, reg_k), reg_gate, unreg_slot) in &rounds {
            let slot = unreg_slot % (live.len() + 1);
            if slot < live.len() {
                let qid = live.remove(slot);
                prop_assert!(sharded.unregister(qid));
                prop_assert!(single.unregister(qid));
            }
            if *reg_gate > 0 {
                if let Some(spec) = make_spec(reg_terms, *reg_k) {
                    let qid = sharded.register(spec.clone());
                    prop_assert_eq!(qid, single.register(spec));
                    live.push(qid);
                }
            }

            let docs: Vec<Document> = doc_batches
                .iter()
                .map(|pairs| {
                    let d = Document::new(
                        DocId(next_doc),
                        pairs.iter().map(|&(t, w)| (TermId(t), w)).collect(),
                        next_doc as f64,
                    );
                    next_doc += 1;
                    d
                })
                .collect();
            total_docs += docs.len() as u64;

            for d in &docs {
                single.process(d);
            }
            for chunk in docs.chunks(batch_size) {
                let (stats, _changes) = sharded.process_batch(chunk.to_vec());
                prop_assert_eq!(stats.len(), chunk.len());
            }
        }

        // Bit-identical results for every surviving query.
        for qid in &live {
            prop_assert_eq!(
                sharded.results(*qid),
                single.results(*qid),
                "mode {:?}, query {:?}",
                mode,
                qid
            );
        }

        // Merged-stat consistency, per mode.
        let per_shard = sharded.shard_cumulative();
        prop_assert_eq!(per_shard.len(), shards);
        let summed: u64 = per_shard.iter().map(|c| c.events).sum();
        match mode {
            ShardingMode::Queries => {
                // Every shard processed every document.
                for cum in &per_shard {
                    prop_assert_eq!(cum.events, total_docs);
                }
                prop_assert_eq!(summed, total_docs * shards as u64);
            }
            ShardingMode::Documents => {
                // Every document was scored by exactly one shard, and the
                // authoritative walk counters match the oracle's exactly.
                prop_assert_eq!(summed, total_docs);
                let walked: u64 = per_shard.iter().map(|c| c.postings_accessed).sum();
                prop_assert_eq!(walked, single.cumulative().postings_accessed);
                let evals: u64 = per_shard.iter().map(|c| c.full_evaluations).sum();
                prop_assert_eq!(evals, single.cumulative().full_evaluations);
            }
        }
    }
}
