//! The unified `MonitorBackend` contract, end to end.
//!
//! One test body — registrations with churn, single publishes, batched
//! publishes, receipt bookkeeping — parameterized **only** by a
//! [`MonitorBuilder`] configuration, runs against the `Naive` oracle for
//! the single-engine monitor and the sharded monitor alike: same public
//! query ids, same document ids, the same changes (as sets), bit-identical
//! results. Plus the sharded snapshot → restore cycle across *different*
//! shard counts, verified against an oracle that never went down.

use continuous_topk::prelude::*;

fn corpus(seed: u64) -> CorpusConfig {
    CorpusConfig { vocab_size: 2_000, avg_tokens: 50, seed, ..CorpusConfig::default() }
}

fn specs(n: usize, seed: u64) -> Vec<QuerySpec> {
    let cfg = WorkloadConfig {
        workload: QueryWorkload::Connected,
        terms_min: 2,
        terms_max: 4,
        k: 4,
        seed,
    };
    QueryGenerator::new(cfg, &corpus(seed)).generate_batch(n)
}

fn sorted_changes(mut changes: Vec<ResultChange>) -> Vec<ResultChange> {
    changes.sort_by_key(|c| (c.query, c.inserted.doc));
    changes
}

/// The shared test body: everything it does goes through `dyn
/// MonitorBackend`, so the only degree of freedom is the builder config.
fn backend_matches_oracle(config: MonitorBuilder, lambda: f64) {
    let mut backend = config.lambda(lambda).build();
    let mut oracle = MonitorBuilder::new(EngineKind::Naive).lambda(lambda).build();

    let all_specs = specs(60, 42);
    let mut qids: Vec<QueryId> = Vec::new();
    for s in &all_specs {
        let qid = backend.register(s.clone());
        assert_eq!(qid, oracle.register(s.clone()), "one monotone public id space");
        qids.push(qid);
    }

    let mut driver = StreamDriver::new(corpus(42), ArrivalClock::unit());
    for round in 0..4u32 {
        // Churn a few queries between batches.
        for q in (round * 12)..(round * 12 + 5) {
            assert!(backend.unregister(QueryId(q)));
            assert!(oracle.unregister(QueryId(q)));
        }
        let fresh = specs(2, 1000 + round as u64);
        for s in fresh {
            let qid = backend.register(s.clone());
            assert_eq!(qid, oracle.register(s));
            qids.push(qid);
        }

        // A batched publish...
        let batch: Vec<(Vec<(TermId, f32)>, Timestamp)> = driver
            .take_batch(40)
            .into_iter()
            .map(|d| (d.vector.iter().collect(), d.arrival))
            .collect();
        let ra = backend.publish_batch(batch.clone());
        let rb = oracle.publish_batch(batch);
        assert_eq!(ra.doc_ids, rb.doc_ids, "same id allocation, round {round}");
        assert_eq!(
            sorted_changes(ra.changes),
            sorted_changes(rb.changes),
            "same change set, round {round}"
        );
        assert_eq!(
            ra.stats.iter().map(|e| e.updates).collect::<Vec<_>>(),
            rb.stats.iter().map(|e| e.updates).collect::<Vec<_>>(),
            "same per-document insertion counts, round {round}"
        );

        // ...and a few single publishes through the same surface.
        for d in driver.take_batch(5) {
            let pairs: Vec<(TermId, f32)> = d.vector.iter().collect();
            let ra = backend.publish(pairs.clone(), d.arrival);
            let rb = oracle.publish(pairs, d.arrival);
            assert_eq!(ra.doc_ids, rb.doc_ids);
            assert_eq!(sorted_changes(ra.changes), sorted_changes(rb.changes));
        }
    }

    // Bit-identical results for every query, live or gone.
    for qid in &qids {
        assert_eq!(backend.results(*qid), oracle.results(*qid), "query {qid}");
    }
    assert_eq!(backend.num_queries(), oracle.num_queries());
}

#[test]
fn single_engine_backend_matches_oracle() {
    backend_matches_oracle(MonitorBuilder::new(EngineKind::Mrio), 1e-3);
}

#[test]
fn sharded_backend_matches_oracle() {
    backend_matches_oracle(MonitorBuilder::new(EngineKind::Mrio).shards(4), 1e-3);
}

#[test]
fn sharded_pipelined_chunked_backend_matches_oracle() {
    backend_matches_oracle(
        MonitorBuilder::new(EngineKind::Mrio).shards(4).batch_size(7).pipeline_window(2),
        1e-3,
    );
}

#[test]
fn backend_matches_oracle_across_renormalization() {
    // λ = 0.5 with the default headroom of 60 renormalizes once arrivals
    // pass 120 — the 180 unit-clock documents cross it on every backend.
    backend_matches_oracle(MonitorBuilder::new(EngineKind::Mrio).shards(2), 0.5);
}

#[test]
fn compacting_backend_matches_oracle() {
    // The churn in the shared body leaves ~30% tombstones; a 0.15 threshold
    // forces several compactions without changing any result.
    backend_matches_oracle(MonitorBuilder::new(EngineKind::Mrio).shards(2).compact_at(0.15), 1e-3);
}

// --- the same matrix in document-sharding mode ---

fn doc_mode(shards: usize) -> MonitorBuilder {
    MonitorBuilder::new(EngineKind::Mrio).sharding(ShardingMode::Documents).shards(shards)
}

#[test]
fn doc_sharded_backend_matches_oracle() {
    backend_matches_oracle(doc_mode(4), 1e-3);
}

#[test]
fn doc_sharded_single_shard_backend_matches_oracle() {
    // One doc-mode shard still pipelines scoring against merging.
    backend_matches_oracle(doc_mode(1), 1e-3);
}

#[test]
fn doc_sharded_pipelined_chunked_backend_matches_oracle() {
    backend_matches_oracle(doc_mode(4).batch_size(7).pipeline_window(2), 1e-3);
}

#[test]
fn doc_backend_matches_oracle_across_renormalization() {
    // Renormalizations force the submit-time candidate filter off for the
    // crossing batches; the unfiltered merge must stay exact.
    backend_matches_oracle(doc_mode(2), 0.5);
}

#[test]
fn doc_compacting_backend_matches_oracle() {
    // Compaction reorganizes the shared epoch copy-on-write at batch
    // boundaries; results must not move.
    backend_matches_oracle(doc_mode(2).compact_at(0.15), 1e-3);
}

// --- and with the bounded (zone-maxima pruned) walk forced on ---

#[test]
fn doc_pruned_backend_matches_oracle() {
    // The bounded walk may only skip candidates the submit-time filter
    // would reject: changes, per-document insertion counts and results all
    // stay bit-identical through the same shared test body.
    backend_matches_oracle(doc_mode(4).doc_pruning(DocPruning::On), 1e-3);
}

#[test]
fn doc_pruned_pipelined_chunked_backend_matches_oracle() {
    backend_matches_oracle(
        doc_mode(4).doc_pruning(DocPruning::On).batch_size(7).pipeline_window(2),
        1e-3,
    );
}

#[test]
fn doc_pruned_backend_matches_oracle_across_renormalization() {
    // Renormalizations scale thresholds down — the one direction frozen
    // bounds cannot absorb: crossing batches must walk exhaustively and
    // the first pruning batch afterwards must rebuild in the new frame.
    backend_matches_oracle(doc_mode(2).doc_pruning(DocPruning::On), 0.5);
}

#[test]
fn doc_pruned_compacting_backend_matches_oracle() {
    // Compaction moves postings positions; the changed lists' bounds must
    // be realigned before the next pruned batch.
    backend_matches_oracle(doc_mode(2).doc_pruning(DocPruning::On).compact_at(0.15), 1e-3);
}

/// Snapshot under one configuration, restore under another (different
/// shard count and/or sharding mode), verified against an oracle that
/// never restarted — including on the continuation stream.
fn snapshot_rebalances_across(
    from: MonitorBuilder,
    expected_sections: usize,
    to: MonitorBuilder,
    to_shards: usize,
) {
    let lambda = 1e-3;
    let mut source = from.lambda(lambda).build();
    let mut oracle = MonitorBuilder::new(EngineKind::Naive).lambda(lambda).build();

    let all_specs = specs(80, 7);
    let qids: Vec<QueryId> = all_specs
        .iter()
        .map(|s| {
            let qid = source.register(s.clone());
            assert_eq!(qid, oracle.register(s.clone()));
            qid
        })
        .collect();

    let mut driver = StreamDriver::new(corpus(7), ArrivalClock::unit());
    let batch: Vec<(Vec<(TermId, f32)>, Timestamp)> = driver
        .take_batch(250)
        .into_iter()
        .map(|d| (d.vector.iter().collect(), d.arrival))
        .collect();
    source.publish_batch(batch.clone());
    oracle.publish_batch(batch);

    // Capture → JSON → restore into the other configuration.
    let snap = source.snapshot();
    assert_eq!(snap.shards.len(), expected_sections, "sections mirror the source partitioning");
    assert_eq!(snap.num_queries(), all_specs.len());
    let parsed = Snapshot::from_json(&snap.to_json().unwrap()).unwrap();
    let (mut restored, mapping) = to.restore(&parsed);
    assert_eq!(restored.shards(), to_shards);
    assert_eq!(restored.num_queries(), all_specs.len());

    for qid in &qids {
        assert_eq!(restored.results(mapping[qid]), oracle.results(*qid), "restored query {qid}");
    }

    // The restored, re-partitioned deployment continues bit-identically.
    let tail: Vec<(Vec<(TermId, f32)>, Timestamp)> = driver
        .take_batch(100)
        .into_iter()
        .map(|d| (d.vector.iter().collect(), d.arrival))
        .collect();
    let ra = restored.publish_batch(tail.clone());
    let rb = oracle.publish_batch(tail);
    assert_eq!(ra.doc_ids, rb.doc_ids, "id allocation resumes from the snapshot position");
    for qid in &qids {
        assert_eq!(restored.results(mapping[qid]), oracle.results(*qid), "continued query {qid}");
    }
}

#[test]
fn snapshot_restores_from_one_shard_to_four() {
    snapshot_rebalances_across(
        MonitorBuilder::new(EngineKind::Mrio).shards(1),
        1,
        MonitorBuilder::new(EngineKind::Mrio).shards(4),
        4,
    );
}

#[test]
fn snapshot_restores_from_four_shards_to_two() {
    snapshot_rebalances_across(
        MonitorBuilder::new(EngineKind::Mrio).shards(4),
        4,
        MonitorBuilder::new(EngineKind::Mrio).shards(2),
        2,
    );
}

#[test]
fn snapshot_restores_from_doc_mode_onto_query_mode() {
    // A doc-parallel capture (one section — its queries are not
    // partitioned) restores onto a query-sharded deployment.
    snapshot_rebalances_across(doc_mode(4), 1, MonitorBuilder::new(EngineKind::Mrio).shards(2), 2);
}

#[test]
fn snapshot_restores_from_query_mode_onto_doc_mode() {
    snapshot_rebalances_across(MonitorBuilder::new(EngineKind::Mrio).shards(4), 4, doc_mode(3), 3);
}
