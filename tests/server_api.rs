//! End-to-end wire API tests: a real `CtkServer` on an ephemeral loopback
//! port, driven only through HTTP — the same path an application takes.
//!
//! The bit-identity assertions lean on the JSON shim's shortest-round-trip
//! f64 formatting: two scores serialize to the same text iff they are the
//! same bits, so comparing parsed `Value` trees (or raw bodies) is an exact
//! state comparison, not an epsilon one.

use continuous_topk::EngineKind;
use ctk_server::{CtkServer, HttpClient, ServerBuilder};
use serde::Value;
use std::time::Duration;

fn start(engine: EngineKind, shards: usize) -> (CtkServer, HttpClient) {
    let server = ServerBuilder::new(engine)
        .lambda(1e-3)
        .shards(shards)
        .bind("127.0.0.1:0")
        .expect("bind ephemeral loopback port");
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    (server, client)
}

fn ok(result: std::io::Result<(u16, String)>, want: u16) -> String {
    let (status, body) = result.expect("transport");
    assert_eq!(status, want, "unexpected status; body: {body}");
    body
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).expect("valid JSON response")
}

fn field_u64(value: &Value, name: &str) -> u64 {
    value.get(name).expect(name).as_u64().expect("u64 field")
}

/// The `/stats` entry for one namespace, by name.
fn ns_stat(stats: &Value, name: &str) -> Value {
    stats
        .get("namespaces")
        .expect("namespaces")
        .as_array()
        .unwrap()
        .iter()
        .find(|n| n.get("namespace").unwrap().as_str().unwrap() == name)
        .unwrap_or_else(|| panic!("namespace {name:?} missing from /stats"))
        .clone()
}

/// Register a couple of overlapping queries; returns their public ids.
fn register_two(client: &mut HttpClient) -> (u64, u64) {
    let a = ok(client.post("/queries", r#"{"terms": [[1, 1.0], [2, 0.5]], "k": 3}"#), 200);
    let b = ok(client.post("/queries", r#"{"terms": [[2, 1.0], [3, 0.5]], "k": 2}"#), 200);
    (field_u64(&parse(&a), "query"), field_u64(&parse(&b), "query"))
}

const BATCH: &str = r#"{"docs": [
    {"terms": [[1, 0.9], [2, 0.4]], "arrival": 1.0},
    {"terms": [[2, 0.8], [3, 0.6]], "arrival": 2.0},
    {"terms": [[1, 0.2], [3, 0.9]], "arrival": 3.0}
]}"#;

#[test]
fn register_publish_longpoll_delivers_exactly_the_receipts_changes() {
    let (server, mut client) = start(EngineKind::Mrio, 1);
    let (qa, qb) = register_two(&mut client);
    assert_eq!((qa, qb), (0, 1), "public query ids are monotone from 0");

    let sub = field_u64(&parse(&ok(client.post("/subscriptions", "{}"), 200)), "subscriber");

    // The publish response is the wire-serialized receipt.
    let receipt = parse(&ok(client.post("/publish", BATCH), 200));
    let changes = receipt.get("changes").expect("changes").as_array().unwrap().to_vec();
    assert!(!changes.is_empty(), "three matching docs must change some result set");
    assert_eq!(receipt.get("doc_ids").unwrap().as_array().unwrap().len(), 3);

    // The long-poll delivers exactly those changes, grouped by ascending
    // query id with doc order preserved within each query (the
    // `changes_by_query` order). A stable sort of the receipt's emission-
    // ordered array by query id reproduces it; the Value comparison is
    // bit-exact on every score.
    let poll = parse(&ok(client.get(&format!("/changes?subscriber={sub}&timeout_ms=5000")), 200));
    let events = poll.get("events").unwrap().as_array().unwrap();
    assert_eq!(field_u64(&poll, "dropped"), 0);
    let mut expected = changes.clone();
    expected.sort_by_key(|c| field_u64(c, "query"));
    let delivered: Vec<Value> =
        events.iter().map(|e| e.get("change").expect("change").clone()).collect();
    assert_eq!(delivered, expected, "long-poll must carry the receipt's changes verbatim");
    let seqs: Vec<u64> = events.iter().map(|e| field_u64(e, "seq")).collect();
    assert_eq!(seqs, (0..events.len() as u64).collect::<Vec<_>>());

    // An immediate re-poll is empty: events are delivered once.
    let poll = parse(&ok(client.get(&format!("/changes?subscriber={sub}")), 200));
    assert!(poll.get("events").unwrap().as_array().unwrap().is_empty());

    // Results reflect the publish, best first, within each query's k.
    let results = parse(&ok(client.get(&format!("/queries/{qa}/results")), 200));
    let top = results.get("results").unwrap().as_array().unwrap();
    assert!(!top.is_empty() && top.len() <= 3);
    ok(client.get("/queries/99/results"), 404);
    ok(client.delete(&format!("/queries/{qb}")), 200);
    ok(client.get(&format!("/queries/{qb}/results")), 404);

    server.shutdown();
}

#[test]
fn snapshot_restart_restore_is_bit_identical_across_shard_counts() {
    let (server, mut client) = start(EngineKind::Mrio, 1);
    let (qa, qb) = register_two(&mut client);
    ok(client.post("/publish", BATCH), 200);

    let results_a = parse(&ok(client.get(&format!("/queries/{qa}/results")), 200));
    let results_b = parse(&ok(client.get(&format!("/queries/{qb}/results")), 200));
    let snapshot = ok(client.post("/snapshot", ""), 200);
    server.shutdown();

    // "Restart": a brand-new server process-equivalent — different port,
    // different shard count — restored from the snapshot JSON verbatim.
    let (restarted, mut client) = start(EngineKind::Mrio, 2);
    let restored = parse(&ok(client.post("/restore", &snapshot), 200));
    assert_eq!(field_u64(&restored, "queries"), 2);
    let mapping = restored.get("mapping").unwrap().as_array().unwrap().to_vec();
    assert_eq!(mapping.len(), 2);

    for (old, old_results) in [(qa, results_a), (qb, results_b)] {
        let pair = mapping
            .iter()
            .map(|p| p.as_array().unwrap())
            .find(|p| p[0].as_u64().unwrap() == old)
            .expect("every captured query is mapped");
        let new = pair[1].as_u64().unwrap();
        let restored = parse(&ok(client.get(&format!("/queries/{new}/results")), 200));
        assert_eq!(
            restored.get("results"),
            old_results.get("results"),
            "restored top-k of captured query {old} must be bit-identical"
        );
    }

    // The restored monitor is live: the stream continues where it left off.
    let receipt = parse(&ok(
        client.post("/publish", r#"{"terms": [[1, 1.0], [3, 1.0]], "arrival": 4.0}"#),
        200,
    ));
    assert_eq!(receipt.get("doc_ids").unwrap().as_array().unwrap().len(), 1);
    restarted.shutdown();
}

#[test]
fn drain_refuses_new_publishes_but_loses_nothing_in_flight() {
    let (server, mut client) = start(EngineKind::Mrio, 1);
    register_two(&mut client);
    let sub = field_u64(&parse(&ok(client.post("/subscriptions", "{}"), 200)), "subscriber");
    let receipt = parse(&ok(client.post("/publish", BATCH), 200));
    let published_changes = receipt.get("changes").unwrap().as_array().unwrap().len();

    // Race a publish against the drain from a second connection. Either it
    // lost the race (503, no partial effects) or it won (200, and its
    // changes are fully fanned out before the drain barrier completes).
    let addr = server.addr();
    let racer = std::thread::spawn(move || {
        let mut racing = HttpClient::connect(addr).unwrap();
        racing
            .post("/publish", r#"{"docs": [{"terms": [[2, 0.7]], "arrival": 5.0}]}"#)
            .expect("transport")
    });
    server.drain();
    let (race_status, race_body) = racer.join().unwrap();
    assert!(
        race_status == 200 || race_status == 503,
        "racing publish must be fully applied or fully refused, got {race_status}: {race_body}"
    );
    let race_changes = if race_status == 200 {
        parse(&race_body).get("changes").unwrap().as_array().unwrap().len()
    } else {
        0
    };

    // Draining is observable, late publishes are refused, reads still work.
    let health = parse(&ok(client.get("/healthz"), 200));
    assert_eq!(health.get("draining"), Some(&Value::Bool(true)));
    ok(client.post("/publish", r#"{"terms": [[1, 1.0]]}"#), 503);
    ok(client.post("/restore", "{}"), 503);
    let stats = parse(&ok(client.get("/stats"), 200));
    assert_eq!(field_u64(&stats, "docs_published"), 3 + u64::from(race_status == 200));
    ok(client.post("/snapshot", ""), 200);

    // The subscriber flushes everything buffered before the drain — the
    // original batch plus the racer's changes if it won — then sees an
    // empty draining poll, never a hang.
    let mut flushed = 0;
    loop {
        let poll =
            parse(&ok(client.get(&format!("/changes?subscriber={sub}&timeout_ms=1000")), 200));
        assert_eq!(poll.get("draining"), Some(&Value::Bool(true)));
        let events = poll.get("events").unwrap().as_array().unwrap().len();
        flushed += events;
        if events == 0 {
            break;
        }
    }
    assert_eq!(flushed, published_changes + race_changes, "drain must not drop fanned-out events");

    // Drain is idempotent, including over the wire.
    ok(client.post("/admin/drain", ""), 202);
    server.shutdown();
}

#[test]
fn lifecycle_endpoints_expire_evict_and_forget_over_the_wire() {
    let (server, mut client) = start(EngineKind::Mrio, 2);

    // A namespace nobody has mentioned has no retention resource.
    ok(client.get("/namespaces/tenant-a/retention"), 404);

    // Install a TTL policy; PUT echoes it and GET reads it back.
    let put = parse(&ok(client.put("/namespaces/tenant-a/retention", r#"{"max_age": 5.0}"#), 200));
    assert_eq!(put.get("namespace").unwrap().as_str().unwrap(), "tenant-a");
    let retention = put.get("retention").expect("retention");
    assert_eq!(retention.get("max_age").unwrap().as_f64().unwrap(), 5.0);
    assert_eq!(retention.get("eviction").unwrap().as_str().unwrap(), "oldest");
    let get = ok(client.get("/namespaces/tenant-a/retention"), 200);
    assert_eq!(parse(&get), put, "GET must read back exactly what PUT installed");

    // One query inherits the namespace TTL, one carries its own.
    let body = parse(&ok(
        client.post("/queries", r#"{"terms": [[1, 1.0]], "k": 2, "namespace": "tenant-a"}"#),
        200,
    ));
    assert_eq!(body.get("namespace").unwrap().as_str().unwrap(), "tenant-a");
    let q_ns = field_u64(&body, "query");
    let q_ttl = field_u64(
        &parse(&ok(
            client.post("/queries", r#"{"terms": [[2, 1.0]], "k": 2, "max_age": 3.0}"#),
            200,
        )),
        "query",
    );

    // Within both deadlines nothing expires...
    let receipt = parse(&ok(
        client.post("/publish", r#"{"terms": [[1, 0.5], [2, 0.5]], "arrival": 1.0}"#),
        200,
    ));
    assert!(!receipt.get("changes").unwrap().as_array().unwrap().is_empty());
    assert_eq!(field_u64(&parse(&ok(client.get("/stats"), 200)), "expired"), 0);

    // ...and one arrival past them expires both, attributed on the receipt
    // and visible in /stats (totals and per-namespace).
    let receipt =
        parse(&ok(client.post("/publish", r#"{"terms": [[9, 1.0]], "arrival": 100.0}"#), 200));
    let expired: u64 = receipt
        .get("stats")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|s| field_u64(s, "expired"))
        .sum();
    assert_eq!(expired, 2, "the receipt attributes the expiries to this publish");
    ok(client.get(&format!("/queries/{q_ns}/results")), 404);
    ok(client.get(&format!("/queries/{q_ttl}/results")), 404);
    let stats = parse(&ok(client.get("/stats"), 200));
    assert_eq!(field_u64(&stats, "expired"), 2);
    assert_eq!(field_u64(&ns_stat(&stats, "tenant-a"), "expired"), 1);
    assert_eq!(field_u64(&ns_stat(&stats, "tenant-a"), "live"), 0);
    assert_eq!(
        field_u64(&ns_stat(&stats, ""), "expired"),
        1,
        "per-query TTL in the default namespace"
    );

    // A cap policy evicts at registration time: cap 1, lowest score first.
    ok(
        client.put(
            "/namespaces/tenant-b/retention",
            r#"{"max_queries": 1, "eviction": "lowest_score"}"#,
        ),
        200,
    );
    let reg_b = |client: &mut HttpClient| {
        field_u64(
            &parse(&ok(
                client
                    .post("/queries", r#"{"terms": [[3, 1.0]], "k": 2, "namespace": "tenant-b"}"#),
                200,
            )),
            "query",
        )
    };
    let evicted_q = reg_b(&mut client);
    let survivor_q = reg_b(&mut client);
    ok(client.get(&format!("/queries/{evicted_q}/results")), 404);
    ok(client.get(&format!("/queries/{survivor_q}/results")), 200);
    let stats = parse(&ok(client.get("/stats"), 200));
    assert_eq!(field_u64(&stats, "evicted"), 1);

    // /forget needs exactly one of dry_run/confirm, knows its namespaces,
    // and only removes when confirmed.
    ok(client.post("/forget", r#"{"namespace": "tenant-b"}"#), 400);
    ok(
        client.post("/forget", r#"{"namespace": "tenant-b", "dry_run": true, "confirm": true}"#),
        400,
    );
    ok(client.post("/forget", r#"{"namespace": "nobody", "dry_run": true}"#), 404);
    let preview =
        parse(&ok(client.post("/forget", r#"{"namespace": "tenant-b", "dry_run": true}"#), 200));
    assert_eq!(field_u64(&preview, "removed"), 1);
    assert_eq!(preview.get("dry_run"), Some(&Value::Bool(true)));
    ok(client.get(&format!("/queries/{survivor_q}/results")), 200);
    let removed =
        parse(&ok(client.post("/forget", r#"{"namespace": "tenant-b", "confirm": true}"#), 200));
    assert_eq!(field_u64(&removed, "removed"), 1);
    assert_eq!(removed.get("dry_run"), Some(&Value::Bool(false)));
    ok(client.get(&format!("/queries/{survivor_q}/results")), 404);
    let stats = parse(&ok(client.get("/stats"), 200));
    assert_eq!(field_u64(&stats, "queries"), 0);
    assert_eq!(field_u64(&ns_stat(&stats, "tenant-b"), "live"), 0);

    server.shutdown();
}

#[test]
fn restore_remaps_subscriber_filters_to_the_new_ids() {
    let (server, mut client) = start(EngineKind::Mrio, 1);
    let (qa, qb) = register_two(&mut client);
    let sub = field_u64(
        &parse(&ok(client.post("/subscriptions", &format!(r#"{{"queries": [{qb}]}}"#)), 200)),
        "subscriber",
    );

    // Drop the lower id so the surviving query's captured id cannot equal
    // its restored id — the remap has to actually move something.
    ok(client.delete(&format!("/queries/{qa}")), 200);
    let snapshot = ok(client.post("/snapshot", ""), 200);
    let restored = parse(&ok(client.post("/restore", &snapshot), 200));
    let mapping = restored.get("mapping").unwrap().as_array().unwrap();
    assert_eq!(mapping.len(), 1);
    let pair = mapping[0].as_array().unwrap();
    assert_eq!(pair[0].as_u64().unwrap(), qb);
    let new_qb = pair[1].as_u64().unwrap();
    assert_ne!(new_qb, qb, "restore must have renumbered the query for this test to bite");

    // A matching publish must reach the filtered subscriber under the NEW
    // id — before the remap fix this filter still said `qb` and the
    // subscriber went silent forever.
    let receipt = parse(&ok(
        client.post("/publish", r#"{"terms": [[2, 1.0], [3, 1.0]], "arrival": 4.0}"#),
        200,
    ));
    assert!(!receipt.get("changes").unwrap().as_array().unwrap().is_empty());
    let poll = parse(&ok(client.get(&format!("/changes?subscriber={sub}&timeout_ms=5000")), 200));
    let events = poll.get("events").unwrap().as_array().unwrap();
    assert!(!events.is_empty(), "restore stranded the subscriber's filter on a stale id");
    for event in events {
        assert_eq!(field_u64(event.get("change").unwrap(), "query"), new_qb);
    }
    server.shutdown();
}

#[test]
fn malformed_requests_get_client_errors_not_hangs() {
    let (server, mut client) = start(EngineKind::Rio, 1);
    ok(client.post("/queries", "{nope"), 400);
    ok(client.post("/queries", r#"{"terms": [], "k": 1}"#), 400);
    ok(client.post("/publish", r#"{"docs": []}"#), 400);
    ok(client.post("/restore", r#"{"bogus": true}"#), 400);
    ok(client.get("/changes"), 400);
    ok(client.get("/changes?subscriber=42"), 404);
    ok(client.delete("/subscriptions/42"), 404);
    ok(client.get("/nope"), 404);
    ok(client.delete("/publish"), 405);
    // The connection survives every error above: one more good request.
    ok(client.get("/healthz"), 200);
    server.shutdown();
}

#[test]
fn reject_admission_answers_429_with_retry_after_and_loses_no_accepted_docs() {
    use ctk_server::AdmissionPolicy;
    // Queue depth 1 and a reject policy: whenever two publishers race while
    // the ingest thread is busy, the loser is told to come back later.
    let server = ServerBuilder::new(EngineKind::Mrio)
        .lambda(1e-3)
        .queue_depth(1)
        .admission(AdmissionPolicy::Reject { retry_after: 0.25 })
        .bind("127.0.0.1:0")
        .expect("bind ephemeral loopback port");
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // Enough overlapping queries that a large batch takes real work.
    for q in 0..64 {
        let term = q % 8 + 1;
        ok(client.post("/queries", &format!(r#"{{"terms": [[{term}, 1.0]], "k": 4}}"#)), 200);
    }
    let docs: Vec<String> = (0..400)
        .map(|d| format!(r#"{{"terms": [[{}, 0.9]], "arrival": {}.0}}"#, d % 8 + 1, d))
        .collect();
    let big_batch = format!(r#"{{"docs": [{}]}}"#, docs.join(", "));

    // Background publishers keep the ingest thread saturated while the
    // foreground hammers until it draws a 429. Everyone counts what was
    // actually accepted so we can prove rejected publishes had no effect.
    let addr = server.addr();
    let publish_round = move |c: &mut HttpClient, batch: &str| -> (u64, u64) {
        let (status, body) = c.post("/publish", batch).expect("transport");
        match status {
            200 => {
                let receipt = parse(&body);
                let state =
                    receipt.get("admission").unwrap().get("state").unwrap().as_str().unwrap();
                assert!(state == "accepted" || state == "enqueued", "admitted publishes say so");
                (1, 0)
            }
            429 => {
                let refusal = parse(&body);
                assert_eq!(
                    refusal.get("admission").unwrap().get("state").unwrap().as_str().unwrap(),
                    "overloaded"
                );
                // retry_after 0.25 rounds up to a whole-second header.
                assert_eq!(c.retry_after(), Some(1.0), "Retry-After is ceil'd seconds");
                (0, 1)
            }
            other => panic!("unexpected publish status {other}: {body}"),
        }
    };
    let publishers: Vec<_> = (0..4)
        .map(|_| {
            let batch = big_batch.clone();
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                (0..30).fold((0u64, 0u64), |(a, r), _| {
                    let (da, dr) = publish_round(&mut c, &batch);
                    (a + da, r + dr)
                })
            })
        })
        .collect();

    let (mut accepted, mut rejected) = (0u64, 0u64);
    for _ in 0..60 {
        let (da, dr) = publish_round(&mut client, &big_batch);
        accepted += da;
        rejected += dr;
        if dr > 0 {
            break;
        }
    }
    for publisher in publishers {
        let (a, r) = publisher.join().unwrap();
        accepted += a;
        rejected += r;
    }
    assert!(rejected > 0, "queue depth 1 under 5 concurrent publishers must overflow");

    // Recovery: once the burst drains, publishing works again, and the
    // accepted-doc count proves every 429 was effect-free.
    let receipt = parse(&ok(client.post("/publish", &big_batch), 200));
    assert_eq!(receipt.get("doc_ids").unwrap().as_array().unwrap().len(), 400);
    accepted += 1;
    server.drain();
    let stats = parse(&ok(client.get("/stats"), 200));
    assert_eq!(field_u64(&stats, "docs_published"), accepted * 400);
    assert_eq!(field_u64(&stats, "queue_capacity"), 1);
    assert!(field_u64(&stats, "queue_highwater") >= 1, "the gauge saw the queue fill");
    server.shutdown();
}

#[test]
fn streamed_snapshot_is_byte_identical_to_buffered_and_restores_bit_identically() {
    let (server, mut client) = start(EngineKind::Mrio, 2);
    let (qa, qb) = register_two(&mut client);
    ok(client.post("/publish", BATCH), 200);
    let results_a = parse(&ok(client.get(&format!("/queries/{qa}/results")), 200));
    let results_b = parse(&ok(client.get(&format!("/queries/{qb}/results")), 200));

    let buffered = ok(client.post("/snapshot", ""), 200);

    // The streamed variant is EOF-framed and closes the connection, so it
    // gets its own connection — and must produce the exact same bytes.
    let mut streamer = HttpClient::connect(server.addr()).expect("connect");
    streamer.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let streamed = ok(streamer.post("/snapshot?stream=1", ""), 200);
    assert_eq!(streamed, buffered, "streamed and buffered snapshots must be byte-identical");
    server.shutdown();

    // The streamed bytes restore onto a different shard count with
    // bit-identical per-query results.
    let (restarted, mut client) = start(EngineKind::Mrio, 3);
    let restored = parse(&ok(client.post("/restore", &streamed), 200));
    let mapping = restored.get("mapping").unwrap().as_array().unwrap().to_vec();
    for (old, old_results) in [(qa, results_a), (qb, results_b)] {
        let pair = mapping
            .iter()
            .map(|p| p.as_array().unwrap())
            .find(|p| p[0].as_u64().unwrap() == old)
            .expect("every captured query is mapped");
        let new = pair[1].as_u64().unwrap();
        let after = parse(&ok(client.get(&format!("/queries/{new}/results")), 200));
        assert_eq!(after.get("results"), old_results.get("results"));
    }
    restarted.shutdown();
}

#[test]
fn stats_report_storage_counters_for_a_paged_backend() {
    use continuous_topk::prelude::PostingsStorage;
    let server = ServerBuilder::new(EngineKind::Mrio)
        .lambda(1e-3)
        .postings_storage(PostingsStorage::Paged)
        .page_budget(4096) // tiny: force spills so cold pages + faults show up
        .bind("127.0.0.1:0")
        .expect("bind ephemeral loopback port");
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // Enough registrations to seal compressed blocks (64 slots each) and
    // overflow the 4 KiB page budget.
    for q in 0..2048 {
        let term = q % 4 + 1;
        let body = format!(r#"{{"terms": [[{term}, 1.0]], "k": 2}}"#);
        ok(client.post("/queries", &body), 200);
    }
    ok(client.post("/publish", r#"{"terms": [[1, 1.0], [3, 0.5]], "arrival": 1.0}"#), 200);

    let stats = parse(&ok(client.get("/stats"), 200));
    assert!(field_u64(&stats, "index_bytes") > 0, "index_bytes must be populated");
    assert!(field_u64(&stats, "hot_pages") + field_u64(&stats, "cold_pages") > 0);
    assert!(field_u64(&stats, "cold_pages") > 0, "a 4 KiB budget must have spilled pages");
    server.shutdown();
}
