//! Streaming-snapshot scale check: a six-figure query population streams
//! through [`SnapshotWriter`] with bounded buffering.
//!
//! The writer's claim is that peak resident memory scales with the chunk
//! size × worker count, not with the capture — `POST /snapshot?stream=1`
//! exists so an operator can capture a large monitor without the daemon
//! materializing the whole JSON tree. This test pins that bound at a size
//! where it matters: 100k queries across four shards, streamed into a
//! counting sink, with the writer's own high-water accounting asserted to
//! stay a small fraction of the bytes that went over the wire.

use continuous_topk::prelude::*;

#[test]
fn hundred_k_query_snapshot_streams_with_bounded_buffering() {
    let mut monitor = ShardedMonitor::new(4, || Naive::new(1e-3));
    for i in 0..100_000u32 {
        let spec = QuerySpec::uniform(&[TermId(i % 512), TermId(512 + i % 1024)], 3).unwrap();
        monitor.register(spec);
    }
    // Some published state so the captured queries carry result sets, not
    // just registrations.
    monitor.publish_batch(
        (0..256u32).map(|d| (vec![(TermId(d % 512), 1.0f32)], f64::from(d))).collect(),
    );

    let snapshot = MonitorBackend::snapshot(&monitor);
    let stats = SnapshotWriter::new()
        .chunk_queries(64)
        .write(&snapshot, &mut std::io::sink())
        .expect("streaming serialization");

    assert_eq!(stats.sections, 4, "one section per shard");
    assert!(stats.query_jobs >= 100_000 / 64, "the population was actually chunked");
    assert!(
        stats.total_bytes > 10 * 1024 * 1024,
        "a 100k-query capture is tens of MB ({} bytes)",
        stats.total_bytes
    );
    // The bound under test: the reorder buffer's high-water mark stays a
    // small multiple of one chunk's serialization — far below the
    // materialized tree (`total_bytes`) an eager `to_json` would hold.
    assert!(
        stats.peak_buffered_bytes < stats.total_bytes / 8,
        "peak buffered {} bytes vs {} total — streaming degenerated into materializing",
        stats.peak_buffered_bytes,
        stats.total_bytes
    );
}
