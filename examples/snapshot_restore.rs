//! Crash recovery without replaying the stream: snapshot the full monitor
//! state (queries + result sets) to JSON, restore it into a fresh backend,
//! and keep monitoring from where it stopped.
//!
//! ```text
//! cargo run --example snapshot_restore
//! ```

use continuous_topk::prelude::*;

fn main() {
    let lambda = 1e-3;
    let corpus = CorpusConfig { vocab_size: 5_000, avg_tokens: 60, ..CorpusConfig::default() };
    let workload =
        WorkloadConfig { workload: QueryWorkload::Connected, k: 3, ..WorkloadConfig::default() };

    // A monitor that has been running for a while...
    let mut qgen = QueryGenerator::new(workload, &corpus);
    let config = MonitorBuilder::new(EngineKind::Mrio).lambda(lambda);
    let mut monitor = config.build();
    let qids: Vec<QueryId> = (0..200).map(|_| monitor.register(qgen.generate())).collect();
    let mut driver = StreamDriver::new(corpus.clone(), ArrivalClock::unit());
    for doc in driver.take_batch(300) {
        monitor.publish(doc.vector.iter().collect(), doc.arrival);
    }

    // ... is snapshotted to JSON (in production: written to disk/S3) ...
    let snapshot = monitor.snapshot();
    let json = snapshot.to_json().expect("serializable");
    println!(
        "snapshot: v{} format, {} queries, {} bytes of JSON, stream position doc #{}",
        snapshot.version,
        snapshot.num_queries(),
        json.len(),
        snapshot.next_doc
    );

    // ... the process dies, a new one restores without replaying anything.
    let parsed = Snapshot::from_json(&json).expect("parse back");
    let (mut restored, mapping) = config.restore(&parsed);

    // Every result set survived bit-for-bit.
    let mut preserved = 0;
    for qid in &qids {
        assert_eq!(monitor.results(*qid), restored.results(mapping[qid]));
        preserved += 1;
    }
    println!("restored monitor preserves all {preserved} result sets exactly");

    // And it keeps processing: stream a few more documents into both; they
    // stay in lockstep.
    for doc in driver.take_batch(50) {
        let a = monitor.publish(doc.vector.iter().collect(), doc.arrival);
        let b = restored.publish(doc.vector.iter().collect(), doc.arrival);
        assert_eq!(a.doc_ids, b.doc_ids);
        assert_eq!(a.changes.len(), b.changes.len());
    }
    println!("both monitors processed 50 more events in lockstep — recovery complete");
}
