//! End-to-end news alerting: raw headlines go through the real-text
//! pipeline (tokenize → stopwords → Porter stem → vectorize), users register
//! plain keyword strings, and the monitor pushes result-change
//! notifications as stories arrive.
//!
//! ```text
//! cargo run --example news_alerts
//! ```

use continuous_topk::prelude::*;
use std::collections::HashMap;

fn main() {
    let mut analyzer = Analyzer::new();
    let mut monitor = MonitorBuilder::new(EngineKind::Mrio).lambda(0.05).build();

    // Users subscribe with plain keyword strings; note inflected forms.
    let subscriptions = [
        ("alice", "rust databases", 2),
        ("bob", "championship football", 2),
        ("carol", "rocket launches", 2),
    ];
    let mut names: HashMap<QueryId, &str> = HashMap::new();
    for (user, keywords, k) in subscriptions {
        let spec = analyzer.query(keywords, k).expect("valid keywords");
        let qid = monitor.register(spec);
        names.insert(qid, user);
        println!("registered {user}: {keywords:?} (k={k})");
    }

    let headlines = [
        "New Rust database engine smashes benchmark records",
        "Football: underdogs win the championship after penalties",
        "Private company launches rocket carrying lunar lander",
        "Stock markets rally on tech earnings",
        "Database conference announces Rust workshop track",
        "Championship rematch scheduled for spring",
        "Rocket launch scrubbed due to weather, rescheduled",
    ];

    println!("\n--- stream ---");
    for (i, headline) in headlines.iter().enumerate() {
        let pairs = analyzer.term_pairs(headline);
        let receipt = monitor.publish(pairs, i as f64);
        println!("[t={i}] {headline}");
        for (qid, changes) in receipt.changes_by_query() {
            let user = names[&qid];
            for change in &changes {
                match change.evicted {
                    Some(old) => println!(
                        "   ALERT {user}: doc {} (score {:.3}) replaces doc {}",
                        change.inserted.doc, change.inserted.score, old.doc
                    ),
                    None => println!(
                        "   ALERT {user}: doc {} enters top-k (score {:.3})",
                        change.inserted.doc, change.inserted.score
                    ),
                }
            }
        }
    }

    println!("\n--- final result sets ---");
    for (qid, user) in &names {
        let results = monitor.results(*qid).unwrap();
        let docs: Vec<String> =
            results.iter().map(|sd| format!("{}({:.3})", sd.doc, sd.score)).collect();
        println!("{user}: {}", docs.join(", "));
    }
}
