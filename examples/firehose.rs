//! High-rate ingestion: drink the stream in batches instead of sips.
//!
//! Two front-ends for the same firehose:
//! * a single-engine [`Monitor`] fed through `publish_batch` (one renorm
//!   check and changes buffer per batch instead of per document);
//! * a [`ShardedMonitor`] ingesting pipelined batches — shards score batch
//!   `n+1` while the merger drains batch `n`.
//!
//! ```text
//! cargo run --release --example firehose
//! ```

use continuous_topk::prelude::*;
use std::time::Instant;

fn main() {
    let lambda = 1e-3;
    let corpus = CorpusConfig { vocab_size: 4_000, avg_tokens: 40, ..CorpusConfig::default() };
    let workload =
        WorkloadConfig { workload: QueryWorkload::Connected, k: 5, ..WorkloadConfig::default() };
    let mut qgen = QueryGenerator::new(workload, &corpus);
    let specs: Vec<QuerySpec> = (0..2_000).map(|_| qgen.generate()).collect();

    const BATCH: usize = 256;
    const BATCHES: usize = 12;

    // --- Single engine, batched publishes.
    let mut monitor = Monitor::new(MrioSeg::new(lambda));
    for spec in &specs {
        monitor.register(spec.clone());
    }
    let mut driver = StreamDriver::new(corpus.clone(), ArrivalClock::unit());
    let start = Instant::now();
    let mut published = 0usize;
    let mut changed = 0usize;
    for batch in driver.by_ref().take(BATCH * BATCHES).collect::<Vec<_>>().chunks(BATCH) {
        let items: Vec<_> = batch.iter().map(|d| (d.vector.iter().collect(), d.arrival)).collect();
        let (ids, changes) = monitor.publish_batch(items);
        published += ids.len();
        changed += changes.len();
    }
    let dps = published as f64 / start.elapsed().as_secs_f64();
    println!(
        "single engine : {published} docs in batches of {BATCH} -> {dps:.0} docs/sec, \
         {changed} result changes"
    );

    // --- Sharded monitor, pipelined batches.
    let shards = std::thread::available_parallelism().map(|p| p.get().min(4)).unwrap_or(2);
    let mut sharded = ShardedMonitor::new(shards, || MrioSeg::new(lambda));
    let ids: Vec<ShardedQueryId> = specs.iter().map(|s| sharded.register(s.clone())).collect();
    let driver = StreamDriver::new(corpus, ArrivalClock::unit());
    let start = Instant::now();
    let mut merged_updates = 0u64;
    sharded.run_pipelined(driver.batches(BATCH).take(BATCHES), 1, |stats, _changes| {
        merged_updates += stats.iter().map(|ev| ev.updates).sum::<u64>();
    });
    let total = BATCH * BATCHES;
    let dps = total as f64 / start.elapsed().as_secs_f64();
    println!(
        "sharded x{shards}: {total} docs in pipelined batches of {BATCH} -> {dps:.0} docs/sec, \
         {merged_updates} result updates"
    );

    // Both paths kept exact per-query state; show one query's view.
    let sample = ids[0];
    if let Some(top) = sharded.results(sample) {
        println!(
            "query 0 (shard {}): top-{} scores {:?}",
            sample.shard,
            top.len(),
            top.iter()
                .map(|sd| (sd.doc.0, (sd.score.get() * 1e3).round() / 1e3))
                .collect::<Vec<_>>()
        );
    }
}
