//! High-rate ingestion: drink the stream in batches instead of sips.
//!
//! One ingestion loop, two configurations of the same [`MonitorBackend`]:
//! a single-engine monitor fed through `publish_batch` (one renorm check
//! and changes buffer per batch instead of per document), and a sharded
//! monitor whose `publish_batch` pipelines chunks through its workers —
//! shards score chunk `n+1` while the merger drains chunk `n`. The
//! application code cannot tell them apart.
//!
//! ```text
//! cargo run --release --example firehose
//! ```

use continuous_topk::prelude::*;
use std::time::Instant;

const BATCH: usize = 256;
const BATCHES: usize = 12;

/// The whole ingestion path, config-agnostic: register, drink, report.
fn drink(label: &str, config: &MonitorBuilder, specs: &[QuerySpec], corpus: &CorpusConfig) {
    let mut monitor = config.build();
    let qids: Vec<QueryId> = specs.iter().map(|s| monitor.register(s.clone())).collect();

    let mut driver = StreamDriver::new(corpus.clone(), ArrivalClock::unit());
    let start = Instant::now();
    let mut published = 0usize;
    let mut changed = 0usize;
    let mut updates = 0u64;
    for batch in driver.by_ref().take(BATCH * BATCHES).collect::<Vec<_>>().chunks(BATCH) {
        // `&[Document]` converts straight into a typed publish request.
        let receipt = monitor.publish_request(PublishRequest::from(batch));
        published += receipt.doc_ids.len();
        changed += receipt.changes.len();
        updates += receipt.merged_stats().updates;
    }
    let dps = published as f64 / start.elapsed().as_secs_f64();
    assert_eq!(changed as u64, updates, "every update surfaces as exactly one change");
    println!(
        "{label}: {published} docs in batches of {BATCH} -> {dps:.0} docs/sec, \
         {changed} result changes"
    );

    // Exact per-query state either way; show one query's view.
    if let Some(top) = monitor.results(qids[0]) {
        println!(
            "  query 0 ({} shard(s)): top-{} scores {:?}",
            monitor.shards(),
            top.len(),
            top.iter()
                .map(|sd| (sd.doc.0, (sd.score.get() * 1e3).round() / 1e3))
                .collect::<Vec<_>>()
        );
    }
}

fn main() {
    let lambda = 1e-3;
    let corpus = CorpusConfig { vocab_size: 4_000, avg_tokens: 40, ..CorpusConfig::default() };
    let workload =
        WorkloadConfig { workload: QueryWorkload::Connected, k: 5, ..WorkloadConfig::default() };
    let mut qgen = QueryGenerator::new(workload, &corpus);
    let specs: Vec<QuerySpec> = (0..2_000).map(|_| qgen.generate()).collect();

    let base = MonitorBuilder::new(EngineKind::Mrio).lambda(lambda);
    // At least 2 so the sharded path is exercised even on one core.
    let shards = std::thread::available_parallelism().map(|p| p.get().clamp(2, 4)).unwrap_or(2);

    drink("single engine ", &base, &specs, &corpus);
    drink(
        &format!("sharded x{shards}"),
        // Each 256-doc publish is pipelined through the shards as four
        // 64-doc chunks, one chunk in flight behind the merger.
        &base.clone().shards(shards).batch_size(BATCH / 4).pipeline_window(1),
        &specs,
        &corpus,
    );
}
