//! Two tenants, one shared monitor: per-namespace retention policies keep
//! each tenant's query population within its own budget while every query
//! is served from the same index and the same worker pool.
//!
//! * Tenant **alerts** gets a TTL policy — saved searches go stale and are
//!   expired at publish boundaries (one query carries a shorter, per-query
//!   override).
//! * Tenant **dashboards** gets a cap — at most 8 live queries; pinning a
//!   9th evicts the member with the weakest current top-1 score.
//!
//! At the end the dashboards tenant is offboarded with one
//! `forget_namespace` call: a bulk unregister plus forced index compaction,
//! leaving no tombstones behind.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use continuous_topk::prelude::*;

fn main() {
    let corpus = CorpusConfig { vocab_size: 2_000, avg_tokens: 30, ..CorpusConfig::default() };
    let workload =
        WorkloadConfig { workload: QueryWorkload::Connected, k: 5, ..WorkloadConfig::default() };
    let mut qgen = QueryGenerator::new(workload, &corpus);
    let mut driver = StreamDriver::new(corpus, ArrivalClock::unit());

    // One shared deployment; the namespaces partition queries, not work.
    let mut monitor = MonitorBuilder::new(EngineKind::Mrio).lambda(1e-3).shards(2).build();

    let alerts = monitor.intern_namespace("alerts");
    monitor.set_retention(
        alerts,
        RetentionPolicy {
            max_age: Some(64.0),
            max_queries: None,
            eviction: EvictionPolicy::Oldest,
        },
    );
    let dashboards = monitor.intern_namespace("dashboards");
    monitor.set_retention(
        dashboards,
        RetentionPolicy {
            max_age: None,
            max_queries: Some(8),
            eviction: EvictionPolicy::LowestScore,
        },
    );

    // Six alert queries at t = 0: five on the namespace TTL (deadline 64),
    // one urgent search with its own shorter lease (deadline 16).
    for _ in 0..5 {
        monitor.register_with(qgen.generate(), QueryOptions { namespace: alerts, max_age: None });
    }
    let urgent = monitor
        .register_with(qgen.generate(), QueryOptions { namespace: alerts, max_age: Some(16.0) });

    // Stream the first window (arrivals 0..40): only the urgent query's
    // deadline falls inside it, and the receipt attributes the expiry to
    // the publish that crossed it.
    let mut expired_on_receipts = 0;
    for _ in 0..5 {
        let batch: Vec<(Vec<(TermId, f32)>, f64)> = driver
            .take_batch(8)
            .into_iter()
            .map(|doc| (doc.vector.iter().collect(), doc.arrival))
            .collect();
        let receipt = monitor.publish_batch(batch);
        expired_on_receipts += receipt.stats.iter().map(|s| s.expired).sum::<u64>();
    }
    assert_eq!(expired_on_receipts, 1, "the urgent query expired mid-stream");
    assert!(monitor.results(urgent).is_none(), "expired queries are gone, not paused");
    println!("window 1: urgent alert expired at its 16-unit lease, 5 alerts remain");

    // Eight dashboard queries, then a second window so they earn real
    // scores — and so the alert tenant's 64-unit deadlines pass.
    let dash_qids: Vec<QueryId> = (0..8)
        .map(|_| {
            monitor.register_with(
                qgen.generate(),
                QueryOptions { namespace: dashboards, max_age: None },
            )
        })
        .collect();
    for _ in 0..5 {
        let batch: Vec<(Vec<(TermId, f32)>, f64)> = driver
            .take_batch(8)
            .into_iter()
            .map(|doc| (doc.vector.iter().collect(), doc.arrival))
            .collect();
        expired_on_receipts +=
            monitor.publish_batch(batch).stats.iter().map(|s| s.expired).sum::<u64>();
    }
    assert_eq!(expired_on_receipts, 6, "all six alert queries have now aged out");

    // Pinning a 9th dashboard evicts the weakest current member — the
    // monitor picks the same victim an explicit-unregister oracle would.
    let weakest = *dash_qids
        .iter()
        .min_by(|&&a, &&b| {
            let top = |q: QueryId| {
                monitor.results(q).and_then(|r| r.first().map(|s| s.score.get())).unwrap_or(0.0)
            };
            (top(a), a).partial_cmp(&(top(b), b)).unwrap()
        })
        .unwrap();
    let ninth = monitor
        .register_with(qgen.generate(), QueryOptions { namespace: dashboards, max_age: None });
    assert!(monitor.results(weakest).is_none(), "the weakest dashboard was evicted");
    assert!(monitor.results(ninth).is_some(), "the newcomer is never its own victim");
    println!("window 2: dashboard cap held at 8 — evicted query {weakest:?} for {ninth:?}");

    for ns in monitor.namespace_stats() {
        println!(
            "  namespace {:10} live {:2}  expired {}  evicted {}",
            if ns.namespace.is_empty() { "(default)" } else { &ns.namespace },
            ns.live,
            ns.expired,
            ns.evicted
        );
    }
    assert_eq!(monitor.lifecycle_totals(), (6, 1));

    // Offboard the dashboards tenant in one call.
    let removed = monitor.forget_namespace(dashboards);
    assert_eq!(removed, 8);
    assert_eq!(monitor.num_queries(), 0);
    println!("offboarded dashboards: {removed} queries removed, index compacted");
}
