//! The runnable daemon: build a monitor from CLI flags, serve the wire API
//! until SIGTERM/SIGINT, then drain and exit cleanly.
//!
//! ```text
//! cargo run --release --example serve -- \
//!     [--host 127.0.0.1] [--port 8722] [--engine mrio] [--lambda 1e-3] \
//!     [--shards N] [--mode query|doc] [--pruning off|on|auto] \
//!     [--batch N] [--window N] [--adaptive [target_ms]] \
//!     [--queue-depth N] [--admission block|reject[:retry_secs]] \
//!     [--subscriber-buffer N] \
//!     [--journal-dir DIR] [--fsync always|never|interval:MS] \
//!     [--journal-max-bytes N]
//! ```
//!
//! Every monitor knob is the same registry string the bench harness uses
//! (`EngineKind`/`ShardingMode`/`DocPruning` all implement `FromStr`), so a
//! daemon config is copy-pasteable from a sweep config. See the README's
//! "Running the daemon" section for a curl transcript against this binary.

use continuous_topk::EngineKind;
use ctk_core::{AdaptiveConfig, DocPruning, ShardingMode};
use ctk_server::{signal, AdmissionPolicy, FsyncPolicy, ServerBuilder};
use std::time::Duration;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn parsed<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let raw = arg_value(args, flag)?;
    match raw.parse() {
        Ok(value) => Some(value),
        Err(_) => {
            eprintln!("serve: bad value {raw:?} for {flag}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let host = arg_value(&args, "--host").unwrap_or_else(|| "127.0.0.1".to_string());
    let port: u16 = parsed(&args, "--port").unwrap_or(8722);
    let engine: EngineKind = parsed(&args, "--engine").unwrap_or(EngineKind::Mrio);

    let mut builder = ServerBuilder::new(engine)
        .lambda(parsed(&args, "--lambda").unwrap_or(1e-3))
        .shards(parsed(&args, "--shards").unwrap_or(1));
    if let Some(mode) = parsed::<ShardingMode>(&args, "--mode") {
        builder = builder.sharding(mode);
    }
    if let Some(pruning) = parsed::<DocPruning>(&args, "--pruning") {
        builder = builder.doc_pruning(pruning);
    }
    if let Some(batch) = parsed::<usize>(&args, "--batch") {
        builder = builder.batch_size(batch);
    }
    if let Some(window) = parsed::<usize>(&args, "--window") {
        builder = builder.pipeline_window(window);
    }
    if args.iter().any(|a| a == "--adaptive") {
        let mut adaptive = AdaptiveConfig::default();
        // The target is optional: `--adaptive` alone takes the default.
        if let Some(raw) = arg_value(&args, "--adaptive").filter(|v| !v.starts_with("--")) {
            match raw.parse() {
                Ok(target) => adaptive = adaptive.target_drain_ms(target),
                Err(_) => {
                    eprintln!("serve: bad value {raw:?} for --adaptive");
                    std::process::exit(2);
                }
            }
        }
        builder = builder.adaptive_batching(adaptive);
    }
    if let Some(depth) = parsed::<usize>(&args, "--queue-depth") {
        builder = builder.queue_depth(depth);
    }
    if let Some(raw) = arg_value(&args, "--admission") {
        let policy = match raw.as_str() {
            "block" => AdmissionPolicy::Block,
            "reject" => AdmissionPolicy::Reject { retry_after: 1.0 },
            other => match other.strip_prefix("reject:").and_then(|s| s.parse().ok()) {
                Some(retry_after) => AdmissionPolicy::Reject { retry_after },
                None => {
                    eprintln!("serve: bad value {raw:?} for --admission");
                    std::process::exit(2);
                }
            },
        };
        builder = builder.admission(policy);
    }
    if let Some(capacity) = parsed::<usize>(&args, "--subscriber-buffer") {
        builder = builder.subscriber_buffer(capacity);
    }
    // Durability: with a journal dir every mutating command is written (and
    // under `--fsync always`, synced) before its HTTP ack; a restart on the
    // same dir replays the tail. Without one the daemon is memory-only.
    if let Some(dir) = arg_value(&args, "--journal-dir") {
        builder = builder.journal_dir(dir);
    }
    if let Some(fsync) = parsed::<FsyncPolicy>(&args, "--fsync") {
        builder = builder.fsync(fsync);
    }
    if let Some(max_bytes) = parsed::<u64>(&args, "--journal-max-bytes") {
        builder = builder.journal_max_bytes(max_bytes);
    }

    signal::install();
    let server = match builder.bind((host.as_str(), port)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: cannot bind {host}:{port}: {e}");
            std::process::exit(1);
        }
    };
    println!("serve: {engine} monitor listening on http://{}", server.addr());
    println!("serve: SIGTERM/SIGINT drains in-flight publishes, then exits");

    while !signal::requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("serve: termination signal received; draining");
    server.shutdown();
    println!("serve: drained and stopped");
}
