//! High-rate social-feed monitoring with the sharded parallel monitor:
//! millions of users could never be served by one core, so queries shard
//! across worker threads and every post fans out to all shards — behind
//! the same `MonitorBackend` API as the single-engine monitor, so the
//! shard count is a config value in the loop below, nothing more.
//!
//! ```text
//! cargo run --release --example social_feed
//! ```

use continuous_topk::prelude::*;
use std::time::Instant;

fn main() {
    let corpus = CorpusConfig {
        vocab_size: 30_000,
        avg_tokens: 40, // short posts
        ..CorpusConfig::default()
    };
    let workload =
        WorkloadConfig { workload: QueryWorkload::Connected, k: 10, ..WorkloadConfig::default() };
    let num_queries = 20_000;
    let posts = 400;
    let lambda = 1e-3; // fresh content matters on a feed

    let mut qgen = QueryGenerator::new(workload, &corpus);
    let specs = qgen.generate_batch(num_queries);

    for shards in [1usize, 2, 4] {
        let mut monitor =
            MonitorBuilder::new(EngineKind::Mrio).lambda(lambda).shards(shards).build();
        let mut ids = Vec::with_capacity(specs.len());
        for spec in &specs {
            ids.push(monitor.register(spec.clone()));
        }

        let mut driver = StreamDriver::new(corpus.clone(), ArrivalClock::Poisson { rate: 5.0 });
        let batch = driver.take_batch(posts);

        let start = Instant::now();
        let mut total_updates = 0u64;
        for doc in batch {
            let receipt = monitor.publish(doc.vector.iter().collect(), doc.arrival);
            total_updates += receipt.merged_stats().updates;
        }
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "{shards} shard(s): {posts} posts in {:.3}s ({:.1} posts/s), {} feed updates",
            elapsed,
            posts as f64 / elapsed,
            total_updates
        );

        // Show one user's live feed.
        if shards == 1 {
            let feed = monitor.results(ids[0]).unwrap();
            println!("  sample user feed ({} items):", feed.len());
            for sd in feed.iter().take(3) {
                println!("    {} score {:.4}", sd.doc, sd.score);
            }
        }
    }
}
