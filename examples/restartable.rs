//! A restartable sharded deployment: run a 4-shard monitor, snapshot it,
//! "kill" the process (drop the monitor, worker threads and all), and
//! restore the capture into a *2-shard* monitor on the next boot — the
//! versioned snapshot format rebalances queries across whatever shard
//! count the new configuration has. An oracle that never died verifies the
//! restored deployment stays bit-identical on the continuation stream.
//!
//! ```text
//! cargo run --release --example restartable
//! ```

use continuous_topk::prelude::*;

fn main() {
    let lambda = 1e-3;
    let corpus = CorpusConfig { vocab_size: 5_000, avg_tokens: 50, ..CorpusConfig::default() };
    let workload =
        WorkloadConfig { workload: QueryWorkload::Connected, k: 5, ..WorkloadConfig::default() };
    let mut qgen = QueryGenerator::new(workload, &corpus);
    let specs: Vec<QuerySpec> = (0..300).map(|_| qgen.generate()).collect();
    let mut driver = StreamDriver::new(corpus, ArrivalClock::unit());

    // Boot #1: a 4-shard MRIO deployment, plus a single-engine oracle that
    // will survive the "crash" for comparison.
    let mut monitor = MonitorBuilder::new(EngineKind::Mrio).lambda(lambda).shards(4).build();
    let mut oracle = MonitorBuilder::new(EngineKind::Naive).lambda(lambda).build();
    let qids: Vec<QueryId> = specs
        .iter()
        .map(|s| {
            let qid = monitor.register(s.clone());
            assert_eq!(qid, oracle.register(s.clone()));
            qid
        })
        .collect();
    for doc in driver.take_batch(400) {
        let pairs: Vec<(TermId, f32)> = doc.vector.iter().collect();
        monitor.publish(pairs.clone(), doc.arrival);
        oracle.publish(pairs, doc.arrival);
    }
    println!(
        "boot #1: {} queries on {} shards, 400 documents ingested",
        monitor.num_queries(),
        monitor.shards()
    );

    // Snapshot to JSON and kill the deployment.
    let json = monitor.snapshot().to_json().expect("serializable");
    println!(
        "snapshot: v{} format, {} section(s), {} bytes",
        SNAPSHOT_VERSION,
        monitor.shards(),
        json.len()
    );
    drop(monitor); // workers join; nothing survives but the JSON

    // Boot #2: restore into a *different* shard count.
    let snapshot = Snapshot::from_json(&json).expect("parse");
    let (mut monitor, mapping) = MonitorBuilder::new(EngineKind::Mrio).shards(2).restore(&snapshot);
    println!(
        "boot #2: restored {} queries onto {} shards (was {})",
        monitor.num_queries(),
        monitor.shards(),
        snapshot.shards.len()
    );
    for qid in &qids {
        assert_eq!(monitor.results(mapping[qid]), oracle.results(*qid), "restored state exact");
    }

    // Continue the stream: the rebalanced deployment tracks the oracle
    // bit-for-bit.
    for doc in driver.take_batch(200) {
        let pairs: Vec<(TermId, f32)> = doc.vector.iter().collect();
        let a = monitor.publish(pairs.clone(), doc.arrival);
        let b = oracle.publish(pairs, doc.arrival);
        assert_eq!(a.doc_ids, b.doc_ids, "document ids continue from the snapshot position");
    }
    for qid in &qids {
        assert_eq!(monitor.results(mapping[qid]), oracle.results(*qid));
    }
    println!("200 continuation documents processed in lockstep — restart complete");
}
