//! Run all seven engines (the paper's five plus the two extra MRIO
//! variants) on one identical synthetic stream, verify they maintain
//! byte-identical results, and print their work counters side by side —
//! the paper's optimality story (§III, Lemma 2) in miniature.
//!
//! ```text
//! cargo run --release --example algo_comparison
//! ```

use continuous_topk::prelude::*;

fn main() {
    let corpus = CorpusConfig { vocab_size: 20_000, avg_tokens: 150, ..CorpusConfig::default() };
    let workload =
        WorkloadConfig { workload: QueryWorkload::Connected, k: 5, ..WorkloadConfig::default() };
    let num_queries = 4_000;
    let events = 600;
    let lambda = 1e-3;

    let mut qgen = QueryGenerator::new(workload, &corpus);
    let specs = qgen.generate_batch(num_queries);

    let mut engines: Vec<Box<dyn ContinuousTopK>> = vec![
        Box::new(Naive::new(lambda)),
        Box::new(Rta::new(lambda)),
        Box::new(SortQuer::new(lambda)),
        Box::new(Tps::new(lambda)),
        Box::new(Rio::new(lambda)),
        Box::new(MrioSeg::new(lambda)),
        Box::new(MrioBlock::new(lambda)),
        Box::new(MrioSuffix::new(lambda)),
    ];
    for engine in engines.iter_mut() {
        for spec in &specs {
            engine.register(spec.clone());
        }
    }

    eprintln!(
        "streaming {events} documents into {num_queries} queries x {} engines...",
        engines.len()
    );
    let mut driver = StreamDriver::new(corpus, ArrivalClock::unit());
    for doc in driver.take_batch(events) {
        for engine in engines.iter_mut() {
            engine.process(&doc);
        }
    }

    // Exactness: every engine agrees with the oracle on every query.
    let (oracle, subjects) = engines.split_first().unwrap();
    let mut checked = 0usize;
    for q in 0..num_queries as u32 {
        let want = oracle.results(QueryId(q)).unwrap();
        for s in subjects {
            assert_eq!(s.results(QueryId(q)).unwrap(), want, "{} query {q}", s.name());
        }
        checked += 1;
    }
    println!("all {} engines agree on {checked} result sets\n", engines.len());

    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "engine", "evals/event", "iters/event", "postings/event"
    );
    for engine in &engines {
        let c = engine.cumulative();
        println!(
            "{:<12} {:>14.1} {:>14.1} {:>14.1}",
            engine.name(),
            c.avg_full_evaluations(),
            c.avg_iterations(),
            c.postings_accessed as f64 / c.events as f64,
        );
    }
    println!(
        "\nMRIO considers the fewest queries per event — the paper's \
         minimality claim (Lemma 2)."
    );
}
