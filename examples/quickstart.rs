//! Quickstart: register a few continuous queries, stream documents, read
//! the continuously maintained top-k results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use continuous_topk::prelude::*;

fn main() {
    // An MRIO engine with recency decay λ = 0.01 per time unit: newer
    // documents outrank equally-similar older ones.
    let mut engine = MrioSeg::new(0.01);

    // Vocabulary by hand for the demo: 0=rust 1=database 2=stream 3=cooking.
    let rust = TermId(0);
    let database = TermId(1);
    let stream = TermId(2);
    let cooking = TermId(3);

    // Two users with different interests, each wanting their top-3 docs.
    let q_systems = engine.register(QuerySpec::uniform(&[rust, database], 3).unwrap());
    let q_streams = engine.register(QuerySpec::uniform(&[stream, database], 3).unwrap());

    // The document stream flows in.
    let docs = [
        (vec![(rust, 2.0), (database, 1.0)], "rust-heavy database post"),
        (vec![(stream, 3.0), (database, 1.0)], "stream processing survey"),
        (vec![(cooking, 5.0)], "a recipe (matches nobody)"),
        (vec![(rust, 1.0), (stream, 1.0), (database, 1.0)], "rust streaming databases"),
    ];
    for (i, (pairs, label)) in docs.into_iter().enumerate() {
        let doc = Document::new(DocId(i as u64), pairs, i as f64);
        let stats = engine.process(&doc);
        println!(
            "event {i}: {label:<32} -> {} result update(s), {} full evaluation(s)",
            engine.last_changes().len(),
            stats.full_evaluations
        );
    }

    for (name, qid) in [("systems user", q_systems), ("streams user", q_streams)] {
        println!("\ntop-k for {name}:");
        for (rank, sd) in engine.results(qid).unwrap().iter().enumerate() {
            println!("  #{} doc {} score {:.4}", rank + 1, sd.doc, sd.score);
        }
    }

    let cum = engine.cumulative();
    println!(
        "\nprocessed {} events with {} full evaluations total (pruning at work)",
        cum.events, cum.full_evaluations
    );
}
