//! # continuous-topk
//!
//! A from-scratch Rust reproduction of **"Continuous Top-k Monitoring on
//! Document Streams"** (U, Zhang, Mouratidis, Li — ICDE 2018 / TKDE 2017):
//! a central server hosts millions of continuous keyword queries (CTQDs) and
//! refreshes each one's top-k most relevant documents as a document stream
//! flows in.
//!
//! The paper's contribution — the **RIO** and **MRIO** algorithms, which
//! index the *queries* in ID-ordered inverted lists and prune with
//! (globally, then zone-locally) bounded WAND-style jumps — lives in
//! [`ctk_core`], re-exported here. The published baselines (RTA, SortQuer,
//! TPS) live in [`ctk_baselines`]; synthetic corpora and the paper's two
//! query workloads in [`ctk_stream`]; real-text analysis in [`ctk_text`].
//!
//! ## Quickstart
//!
//! Applications construct a monitor through [`MonitorBuilder`] and talk to
//! it through the [`MonitorBackend`] trait — the same API whether one
//! engine does the work or a shard pool does:
//!
//! ```
//! use continuous_topk::prelude::*;
//!
//! // An MRIO monitor with decay λ = 0.001 per time unit.
//! let mut monitor = MonitorBuilder::new(EngineKind::Mrio).lambda(0.001).build();
//!
//! // Register a user's continuous query: keywords + k.
//! let q = monitor.register(QuerySpec::uniform(&[TermId(10), TermId(42)], 5).unwrap());
//!
//! // Publish stream documents; the receipt reports ids, changes and work.
//! let receipt = monitor.publish(vec![(TermId(42), 1.0)], 0.0);
//! assert_eq!(receipt.doc_id(), DocId(0));
//! assert_eq!(receipt.changes_for(q).count(), 1);
//!
//! // Read the continuously maintained top-k.
//! let top = monitor.results(q).unwrap();
//! assert_eq!(top[0].doc, DocId(0));
//! ```
//!
//! Scaling out is a builder knob, not an API change — and a snapshot taken
//! from any configuration restores into any other (the shard sections are
//! rebalanced on restore):
//!
//! ```
//! use continuous_topk::prelude::*;
//!
//! let config = MonitorBuilder::new(EngineKind::Mrio).lambda(0.001).shards(4);
//! let mut monitor = config.build();
//! let q = monitor.register(QuerySpec::uniform(&[TermId(3)], 2).unwrap());
//! monitor.publish_batch(vec![
//!     (vec![(TermId(3), 1.0)], 0.0),
//!     (vec![(TermId(3), 0.5), (TermId(8), 0.5)], 1.0),
//! ]);
//!
//! // snapshot → JSON → restore onto a *different* shard count.
//! let json = monitor.snapshot().to_json().unwrap();
//! let snapshot = Snapshot::from_json(&json).unwrap();
//! let (restored, mapping) = MonitorBuilder::new(EngineKind::Mrio).shards(2).restore(&snapshot);
//! assert_eq!(restored.results(mapping[&q]), monitor.results(q));
//! ```
//!
//! ## Migrating from `Monitor<E>` / `ShardedMonitor`
//!
//! Both front-ends still exist (and now both implement [`MonitorBackend`]);
//! what changed is the surface:
//!
//! * `Monitor::publish` / `publish_batch` return a [`PublishReceipt`]
//!   (`receipt.doc_ids`, `receipt.changes`, `receipt.stats`) instead of
//!   `(DocId, Vec<ResultChange>)` tuples.
//! * `ShardedMonitor` speaks plain [`QueryId`]s — `ShardedQueryId` is gone;
//!   the shard route is internal, and result changes are translated to the
//!   public ids during the merge.
//! * Snapshots are versioned (`version: 3`, per-shard sections plus
//!   namespaces, deadlines and retention policies); v2, v1 and pre-landmark
//!   captures still parse via [`Snapshot::from_json`]. `Monitor::restore`
//!   remains as a thin wrapper over [`Snapshot::restore_into`], which works
//!   on any backend.
//! * Queries can carry lifecycle options: `register_with` takes a
//!   [`QueryOptions`] (namespace + optional TTL), per-namespace
//!   [`RetentionPolicy`]s expire and cap-evict queries at publish
//!   boundaries, and `forget_namespace` bulk-removes a tenant.
//!
//! See `examples/` for end-to-end scenarios (`restartable` exercises the
//! sharded snapshot → kill → restore → continue cycle) and `crates/bench`
//! for the harness regenerating the paper's figures.
//!
//! [`QueryId`]: ctk_common::QueryId
//! [`QueryOptions`]: ctk_core::QueryOptions
//! [`RetentionPolicy`]: ctk_core::RetentionPolicy
//! [`PublishReceipt`]: ctk_core::PublishReceipt
//! [`MonitorBackend`]: ctk_core::MonitorBackend
//! [`Snapshot::from_json`]: ctk_core::Snapshot::from_json
//! [`Snapshot::restore_into`]: ctk_core::Snapshot::restore_into

pub mod builder;

pub use builder::{EngineKind, MonitorBuilder};

pub use ctk_baselines as baselines;
pub use ctk_common as common;
pub use ctk_core as core;
pub use ctk_index as index;
pub use ctk_stream as stream;
pub use ctk_text as text;

/// The types most applications need.
pub mod prelude {
    pub use crate::builder::{EngineKind, MonitorBuilder};
    pub use ctk_baselines::{Rta, SortQuer, Tps};
    pub use ctk_common::{
        DocId, Document, Namespace, OrdF64, Query, QueryId, QuerySpec, ScoredDoc, SparseVector,
        TermId, Timestamp,
    };
    pub use ctk_core::{
        AdaptiveConfig, Admission, ContinuousTopK, CumulativeStats, DecayModel, DocPruning,
        EventStats, EvictionPolicy, IndexConfig, IngestConfig, Monitor, MonitorBackend, Mrio,
        MrioBlock, MrioSeg, MrioSuffix, Naive, NamespaceStats, PostingsStorage, PublishReceipt,
        PublishRequest, QueryOptions, ResultChange, RetentionPolicy, Rio, ShardSnapshot,
        ShardedMonitor, ShardingMode, Snapshot, SnapshotQuery, SnapshotStreamStats, SnapshotWriter,
        StorageConfig, StorageStats, SNAPSHOT_VERSION,
    };
    pub use ctk_stream::{
        ArrivalClock, CorpusConfig, CorpusModel, DocumentGenerator, QueryGenerator, QueryWorkload,
        StreamDriver, WorkloadConfig,
    };
    pub use ctk_text::Analyzer;
}
