//! # continuous-topk
//!
//! A from-scratch Rust reproduction of **"Continuous Top-k Monitoring on
//! Document Streams"** (U, Zhang, Mouratidis, Li — ICDE 2018 / TKDE 2017):
//! a central server hosts millions of continuous keyword queries (CTQDs) and
//! refreshes each one's top-k most relevant documents as a document stream
//! flows in.
//!
//! The paper's contribution — the **RIO** and **MRIO** algorithms, which
//! index the *queries* in ID-ordered inverted lists and prune with
//! (globally, then zone-locally) bounded WAND-style jumps — lives in
//! [`ctk_core`], re-exported here. The published baselines (RTA, SortQuer,
//! TPS) live in [`ctk_baselines`]; synthetic corpora and the paper's two
//! query workloads in [`ctk_stream`]; real-text analysis in [`ctk_text`].
//!
//! ## Quickstart
//!
//! ```
//! use continuous_topk::prelude::*;
//!
//! // An MRIO monitor with decay λ = 0.001 per time unit.
//! let mut engine = MrioSeg::new(0.001);
//!
//! // Register a user's continuous query: keywords + k.
//! let q = engine.register(QuerySpec::uniform(&[TermId(10), TermId(42)], 5).unwrap());
//!
//! // Feed the stream.
//! engine.process(&Document::new(DocId(0), vec![(TermId(42), 1.0)], 0.0));
//!
//! // Read the continuously maintained top-k.
//! let top = engine.results(q).unwrap();
//! assert_eq!(top[0].doc, DocId(0));
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! harness regenerating the paper's figures.

pub use ctk_baselines as baselines;
pub use ctk_common as common;
pub use ctk_core as core;
pub use ctk_index as index;
pub use ctk_stream as stream;
pub use ctk_text as text;

/// The types most applications need.
pub mod prelude {
    pub use ctk_baselines::{Rta, SortQuer, Tps};
    pub use ctk_common::{
        DocId, Document, OrdF64, Query, QueryId, QuerySpec, ScoredDoc, SparseVector, TermId,
        Timestamp,
    };
    pub use ctk_core::{
        ContinuousTopK, CumulativeStats, DecayModel, EventStats, Monitor, Mrio, MrioBlock, MrioSeg,
        MrioSuffix, Naive, ResultChange, Rio, ShardedMonitor, ShardedQueryId, Snapshot,
    };
    pub use ctk_stream::{
        ArrivalClock, CorpusConfig, CorpusModel, DocumentGenerator, QueryGenerator, QueryWorkload,
        StreamDriver, WorkloadConfig,
    };
    pub use ctk_text::Analyzer;
}
