//! The one construction path for monitor backends.
//!
//! [`MonitorBuilder`] assembles any supported configuration — every engine
//! of the paper plus the published baselines, single-engine or sharded,
//! with optional ingest chunking and tombstone compaction — behind the
//! uniform [`MonitorBackend`] API. The examples, the benchmark harness and
//! the integration tests all construct through it, so a configuration is
//! one value, not a code path.

use ctk_baselines::{Rta, SortQuer, Tps};
use ctk_common::{FxHashMap, QueryId};
use ctk_core::{
    AdaptiveConfig, ContinuousTopK, DocPruning, IndexConfig, IngestConfig, Monitor, MonitorBackend,
    MrioBlock, MrioSeg, MrioSuffix, Naive, PostingsStorage, Rio, ShardedMonitor, ShardingMode,
    Snapshot, StorageConfig,
};

/// Every engine a monitor can run on: the paper's algorithms, the three
/// published baselines, and the exhaustive oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// RTA (Mouratidis & Pang) — frequency-ordered threshold algorithm.
    Rta,
    /// RIO — reverse ID-ordering with global per-list bounds (paper Eq. 2).
    Rio,
    /// MRIO with exact segment-tree zone maxima (the paper's default).
    Mrio,
    /// MRIO with block-max zone maxima.
    MrioBlock,
    /// MRIO with suffix-snapshot zone maxima.
    MrioSuffix,
    /// SortQuer (Vouzoukidou et al.) — score-sorted query lists.
    SortQuer,
    /// TPS (Shraer et al.) — top-k publish/subscribe.
    Tps,
    /// The exhaustive term-filtered oracle (exact by construction).
    Naive,
}

impl EngineKind {
    /// All engines, report order.
    pub const ALL: [EngineKind; 8] = [
        EngineKind::Rta,
        EngineKind::Rio,
        EngineKind::Mrio,
        EngineKind::MrioBlock,
        EngineKind::MrioSuffix,
        EngineKind::SortQuer,
        EngineKind::Tps,
        EngineKind::Naive,
    ];

    /// The five methods of the paper's Figure 1, in its legend order.
    pub const PAPER: [EngineKind; 5] =
        [EngineKind::Rta, EngineKind::Rio, EngineKind::Mrio, EngineKind::SortQuer, EngineKind::Tps];

    /// The report name, identical to the engine's `ContinuousTopK::name`.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Rta => "RTA",
            EngineKind::Rio => "RIO",
            EngineKind::Mrio => "MRIO",
            EngineKind::MrioBlock => "MRIO-block",
            EngineKind::MrioSuffix => "MRIO-suffix",
            EngineKind::SortQuer => "SortQuer",
            EngineKind::Tps => "TPS",
            EngineKind::Naive => "Naive",
        }
    }

    /// Parse a report name back into a kind.
    pub fn from_name(name: &str) -> Option<EngineKind> {
        EngineKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Construct a boxed engine of this kind (plain postings storage).
    pub fn build_engine(self, lambda: f64) -> Box<dyn ContinuousTopK + Send> {
        self.build_engine_with(lambda, &StorageConfig::plain())
    }

    /// Construct a boxed engine of this kind with an explicit
    /// postings-storage configuration. RTA and SortQuer keep their own
    /// impact-ordered snapshot structures instead of a `QueryIndex`, so the
    /// storage selection does not apply to them.
    pub fn build_engine_with(
        self,
        lambda: f64,
        storage: &StorageConfig,
    ) -> Box<dyn ContinuousTopK + Send> {
        match self {
            EngineKind::Rta => Box::new(Rta::new(lambda)),
            EngineKind::Rio => Box::new(Rio::with_storage(lambda, storage)),
            EngineKind::Mrio => Box::new(MrioSeg::with_storage(lambda, storage)),
            EngineKind::MrioBlock => Box::new(MrioBlock::with_storage(lambda, storage)),
            EngineKind::MrioSuffix => Box::new(MrioSuffix::with_storage(lambda, storage)),
            EngineKind::SortQuer => Box::new(SortQuer::new(lambda)),
            EngineKind::Tps => Box::new(Tps::with_storage(lambda, storage)),
            EngineKind::Naive => Box::new(Naive::with_storage(lambda, storage)),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    /// Parse an engine name, case-insensitively — CLI flags and server
    /// configs say `mrio` as often as the report name `MRIO`. The exact
    /// [`EngineKind::from_name`] remains the strict report-name lookup.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EngineKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown engine name: {s}"))
    }
}

/// Builder for any [`MonitorBackend`] configuration.
///
/// ```
/// use continuous_topk::prelude::*;
///
/// let mut monitor = MonitorBuilder::new(EngineKind::Mrio).lambda(0.001).build();
/// let q = monitor.register(QuerySpec::uniform(&[TermId(7)], 3).unwrap());
/// let receipt = monitor.publish(vec![(TermId(7), 1.0)], 0.0);
/// assert_eq!(receipt.changes_for(q).count(), 1);
/// assert_eq!(monitor.results(q).unwrap().len(), 1);
/// ```
///
/// The same configuration value, pointed at more shards, serves the same
/// API (and bit-identical results — see `tests/backend_api.rs`):
///
/// ```
/// use continuous_topk::prelude::*;
///
/// let mut monitor =
///     MonitorBuilder::new(EngineKind::Mrio).lambda(0.001).shards(4).build();
/// let q = monitor.register(QuerySpec::uniform(&[TermId(7)], 3).unwrap());
/// monitor.publish_batch(vec![
///     (vec![(TermId(7), 1.0)], 0.0),
///     (vec![(TermId(9), 1.0)], 1.0),
/// ]);
/// assert_eq!(monitor.shards(), 4);
/// assert_eq!(monitor.results(q).unwrap().len(), 1);
/// ```
///
/// # Choosing a sharding mode
///
/// With more than one shard, [`MonitorBuilder::sharding`] picks how the
/// work is partitioned — both modes serve the identical API and produce
/// bit-identical results (checked in `tests/backend_api.rs`), so this is
/// purely a throughput decision:
///
/// * [`ShardingMode::Queries`] (default) splits the **query population**:
///   every worker owns a full engine (of the configured [`EngineKind`])
///   over its slice of the queries, and every document is broadcast to all
///   shards. The per-document matched-list walk is therefore paid once per
///   shard — worth it when the query population is large enough that each
///   shard's slice still dominates the walk (the paper's regime of millions
///   of CTQDs).
/// * [`ShardingMode::Documents`] splits each **ingest batch**: workers walk
///   one shared, read-only index epoch (the exact term-filtered walk with
///   submit-time threshold pruning — the engine kind does not change
///   document-mode results or scoring work), and candidates are merged
///   serially in stream order. The walk is paid once in total, so this mode
///   keeps scaling where query-sharding degenerates into S redundant
///   probes: small-to-medium query populations under high stream rates.
///
/// The crossover is measurable with the `sweep_shards` bench binary
/// (`--mode query|doc|both --queries N,N,...`), which records docs/sec
/// per `queries × mode × shards × batch` cell with one single-threaded
/// reference per population (report schema v3; doc-mode cells also
/// record the bounded walk's `zones_skipped`/`postings_skipped`).
/// Indicatively, in the checked-in `results/sweep_shards.json` (smoke
/// scale, 1-core container, best of 3, pruned walk forced on): at
/// 2 000 queries the two modes are within ~10% of each other
/// (~9 100–9 900 docs/sec — the walk is cheap, coordination decides);
/// at 10 000 queries the *exhaustive* doc walk reaches ~1.7× the single
/// engine while the zone-pruned walk still trails it (probes cost more
/// than they save below [`ctk_core::DOC_PRUNING_AUTO_MIN_QUERIES`] —
/// see [`MonitorBuilder::doc_pruning`]) — and with hundreds of
/// thousands of queries per shard the replicated-walk cost amortizes
/// and query mode's pruning engines (MRIO) win back the lead. Measure
/// with your own workload shape before committing a deployment to
/// either mode.
///
/// ```
/// use continuous_topk::prelude::*;
///
/// let mut monitor = MonitorBuilder::new(EngineKind::Mrio)
///     .lambda(0.001)
///     .shards(4)
///     .sharding(ShardingMode::Documents)
///     .build();
/// let q = monitor.register(QuerySpec::uniform(&[TermId(7)], 3).unwrap());
/// monitor.publish_batch(vec![
///     (vec![(TermId(7), 1.0)], 0.0),
///     (vec![(TermId(9), 1.0)], 1.0),
/// ]);
/// assert_eq!(monitor.sharding_mode(), ShardingMode::Documents);
/// assert_eq!(monitor.results(q).unwrap().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorBuilder {
    kind: EngineKind,
    lambda: f64,
    shards: usize,
    sharding: ShardingMode,
    ingest: IngestConfig,
    index: IndexConfig,
}

impl MonitorBuilder {
    /// A builder for `kind` with λ = 0, one shard, and the default
    /// [`IngestConfig`] (whole-publish batches, fixed chunking) and
    /// [`IndexConfig`] (plain postings storage, compaction disabled).
    pub fn new(kind: EngineKind) -> Self {
        MonitorBuilder {
            kind,
            lambda: 0.0,
            shards: 1,
            sharding: ShardingMode::Queries,
            ingest: IngestConfig::default(),
            index: IndexConfig::default(),
        }
    }

    /// Replace the whole ingestion profile at once (see [`IngestConfig`]).
    /// The flat knobs ([`MonitorBuilder::batch_size`],
    /// [`MonitorBuilder::pipeline_window`],
    /// [`MonitorBuilder::adaptive_batching`]) write through to the same
    /// value, so both styles compose.
    pub fn ingest(mut self, ingest: IngestConfig) -> Self {
        self.ingest = ingest;
        self
    }

    /// Replace the whole index profile at once (see [`IndexConfig`]).
    /// The flat knobs ([`MonitorBuilder::postings_storage`],
    /// [`MonitorBuilder::page_budget`], [`MonitorBuilder::compact_at`],
    /// [`MonitorBuilder::doc_pruning`]) write through to the same value.
    pub fn index(mut self, index: IndexConfig) -> Self {
        self.index = index;
        self
    }

    /// The decay parameter λ (per time unit).
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Number of worker shards. In the default query-sharding mode, 1 (the
    /// default) builds the single-engine [`Monitor`] and more builds a
    /// [`ShardedMonitor`] with the query population spread round-robin; in
    /// document mode every count (including 1) builds the doc-parallel
    /// [`ShardedMonitor`], whose single-shard form still pipelines scoring
    /// against merging.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "a monitor needs at least one shard");
        self.shards = shards;
        self
    }

    /// How the shards partition the work (see "Choosing a sharding mode"
    /// above). Defaults to [`ShardingMode::Queries`]. In
    /// [`ShardingMode::Documents`] the engine kind does not affect scoring:
    /// workers run the exact shared-epoch walk, so results stay
    /// bit-identical to every engine.
    pub fn sharding(mut self, mode: ShardingMode) -> Self {
        self.sharding = mode;
        self
    }

    /// Ingest chunk size for sharded `publish_batch` calls: the publish is
    /// split into chunks of this many documents and pipelined. 0 (the
    /// default) sends each publish as one batch.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.ingest.batch_size = batch_size;
        self
    }

    /// How many ingest chunks a sharded `publish_batch` keeps in flight
    /// (0 = fully synchronous). Default 1: shards score chunk *n+1* while
    /// the merger drains chunk *n*.
    pub fn pipeline_window(mut self, window: usize) -> Self {
        self.ingest.pipeline_window = window;
        self
    }

    /// Enable AIMD adaptive ingest chunking on sharded front-ends (see
    /// [`AdaptiveConfig`]): `publish_batch` grows its chunk size while
    /// drains come back under the latency target and halves it when they
    /// don't, instead of using the fixed [`MonitorBuilder::batch_size`].
    /// Results are bit-identical either way — chunking is
    /// result-invariant — so this only moves throughput and latency. No
    /// effect on the single-engine front-end (one shard, query mode),
    /// which has no drain pipeline to pace.
    pub fn adaptive_batching(mut self, cfg: AdaptiveConfig) -> Self {
        self.ingest.adaptive = Some(cfg);
        self
    }

    /// Enable tombstone compaction: at batch boundaries where the engine's
    /// index has `tombstone_ratio() >= ratio`, dead postings are compacted
    /// and the affected bound structures rebuilt. `<= 0.0` (the default)
    /// disables the policy.
    pub fn compact_at(mut self, ratio: f64) -> Self {
        self.index.compaction_threshold = ratio;
        self
    }

    /// Whether [`ShardingMode::Documents`] workers prune their shared-epoch
    /// walk with frozen zone-maxima bounds (see [`DocPruning`]). Either
    /// way results, changes and per-document insertion counts are
    /// bit-identical to the oracle — only the walk-work counters (and
    /// throughput) move, so this is purely a throughput knob.
    ///
    /// Measured honestly (the `walk` Criterion micro-bench in
    /// `crates/core/benches`, 1-core container, steady-state thresholds,
    /// θ_d = 0.95): the bounded walk costs ~2.7× the exhaustive walk per
    /// 48-term document at 1k queries, ~1.8× at 10k, and ~1.2× at 100k
    /// (narrow 8-term documents: ~1.3×, ~2.0×, ~1.1×) — the gap closes
    /// steadily with population because each bound probe refutes ever more
    /// candidates, but the crossover extrapolates to the paper's 0.25M+
    /// CTQD regime, beyond what this container can sweep. The default
    /// [`DocPruning::Auto`] therefore only engages past
    /// `DOC_PRUNING_AUTO_MIN_QUERIES` (256k) live queries; force
    /// [`DocPruning::On`] to measure your own workload with
    /// `sweep_shards --queries ... --pruning on`, whose per-cell
    /// `zones_skipped` counters show how much walk the bounds refute. No
    /// effect in query mode.
    pub fn doc_pruning(mut self, pruning: DocPruning) -> Self {
        self.index.doc_pruning = pruning;
        self
    }

    /// Which postings layout the query index(es) use (see
    /// [`PostingsStorage`]). All three backends are bit-identical on every
    /// read — the selection only moves the RAM footprint and throughput:
    ///
    /// * [`PostingsStorage::Plain`] (default) — `Vec`-backed lists and
    ///   per-query record `Vec`s; the fastest layout, and the baseline every
    ///   other backend is proptested against.
    /// * [`PostingsStorage::Compressed`] — sealed delta + bit-packed blocks
    ///   (raw f32 weights, lossless) plus a packed record arena; several
    ///   times fewer bytes per registered query at scale.
    /// * [`PostingsStorage::Paged`] — the compressed layout with sealed
    ///   blocks in a byte-budgeted RAM/disk pager (see
    ///   [`MonitorBuilder::page_budget`]); cold blocks spill to disk, hot
    ///   reads stay in RAM.
    ///
    /// Applies to every engine carrying a `QueryIndex` (RIO, the MRIO
    /// variants, TPS, Naive — and the document-mode shared epoch); RTA and
    /// SortQuer keep their own snapshot structures.
    pub fn postings_storage(mut self, storage: PostingsStorage) -> Self {
        self.index.storage.storage = storage;
        self
    }

    /// RAM budget (bytes) for sealed-block payloads under
    /// [`PostingsStorage::Paged`]; `0` (the default) means
    /// [`StorageConfig::DEFAULT_PAGE_BUDGET`]. Ignored by the other
    /// storage backends.
    pub fn page_budget(mut self, bytes: usize) -> Self {
        self.index.storage.page_budget_bytes = bytes;
        self
    }

    /// Apply the ingest profile to a sharded front-end.
    fn configure_ingest(&self, sharded: &mut ShardedMonitor) {
        sharded.set_ingest_chunking(self.ingest.batch_size, self.ingest.pipeline_window);
        if let Some(cfg) = self.ingest.adaptive {
            sharded.set_adaptive_batching(cfg);
        }
        if self.index.compaction_threshold > 0.0 {
            sharded.set_compaction_threshold(self.index.compaction_threshold);
        }
    }

    /// Build the configured backend.
    pub fn build(&self) -> Box<dyn MonitorBackend + Send> {
        match self.sharding {
            ShardingMode::Queries if self.shards == 1 => Box::new(
                Monitor::new(self.kind.build_engine_with(self.lambda, &self.index.storage))
                    .with_compaction(self.index.compaction_threshold),
            ),
            ShardingMode::Queries => {
                let mut sharded = ShardedMonitor::new(self.shards, || {
                    self.kind.build_engine_with(self.lambda, &self.index.storage)
                });
                self.configure_ingest(&mut sharded);
                Box::new(sharded)
            }
            ShardingMode::Documents => {
                let mut sharded = ShardedMonitor::new_doc_parallel_with(
                    self.shards,
                    self.lambda,
                    &self.index.storage,
                );
                sharded.set_doc_pruning(self.index.doc_pruning);
                self.configure_ingest(&mut sharded);
                Box::new(sharded)
            }
        }
    }

    /// Build the configured backend and restore a [`Snapshot`] into it.
    /// The snapshot's λ overrides the builder's, and its shard sections are
    /// rebalanced onto this configuration's shard count. Returns the
    /// backend and the captured-id → new-id mapping.
    pub fn restore(
        &self,
        snapshot: &Snapshot,
    ) -> (Box<dyn MonitorBackend + Send>, FxHashMap<QueryId, QueryId>) {
        let mut backend = self.clone().lambda(snapshot.lambda).build();
        let mapping = snapshot.restore_into(&mut *backend);
        (backend, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_names_round_trip() {
        for kind in EngineKind::ALL {
            let engine = kind.build_engine(0.001);
            assert_eq!(engine.name(), kind.name());
            assert_eq!(engine.lambda(), 0.001);
            assert_eq!(EngineKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.name().parse::<EngineKind>().unwrap(), kind);
        }
        assert!(EngineKind::from_name("WAND2000").is_none());
    }

    #[test]
    fn builder_picks_the_front_end_by_shard_count() {
        let single = MonitorBuilder::new(EngineKind::Mrio).lambda(0.5).build();
        assert_eq!(single.shards(), 1);
        assert_eq!(single.lambda(), 0.5);
        assert_eq!(single.sharding_mode(), ShardingMode::Queries);
        let sharded = MonitorBuilder::new(EngineKind::Mrio).lambda(0.5).shards(3).build();
        assert_eq!(sharded.shards(), 3);
        assert_eq!(sharded.lambda(), 0.5);
        assert_eq!(sharded.sharding_mode(), ShardingMode::Queries);
    }

    #[test]
    fn builder_picks_the_front_end_by_sharding_mode() {
        // Document mode builds the doc-parallel monitor at every shard
        // count — a single shard still pipelines scoring against merging.
        for shards in [1usize, 3] {
            let doc = MonitorBuilder::new(EngineKind::Mrio)
                .lambda(0.5)
                .shards(shards)
                .sharding(ShardingMode::Documents)
                .build();
            assert_eq!(doc.shards(), shards);
            assert_eq!(doc.sharding_mode(), ShardingMode::Documents);
            assert_eq!(doc.lambda(), 0.5);
        }
    }

    #[test]
    fn storage_knob_reaches_every_front_end() {
        use ctk_common::{QuerySpec, TermId};
        for storage in PostingsStorage::ALL {
            for (shards, mode) in [
                (1, ShardingMode::Queries),
                (2, ShardingMode::Queries),
                (2, ShardingMode::Documents),
            ] {
                let mut m = MonitorBuilder::new(EngineKind::Mrio)
                    .lambda(0.001)
                    .shards(shards)
                    .sharding(mode)
                    .postings_storage(storage)
                    .page_budget(4096)
                    .build();
                let q = m.register(QuerySpec::uniform(&[TermId(1)], 2).unwrap());
                m.publish(vec![(TermId(1), 1.0)], 0.0);
                assert_eq!(m.results(q).unwrap().len(), 1, "{storage} {mode} x{shards}");
                assert!(m.storage_stats().index_bytes > 0, "{storage} {mode} x{shards}");
            }
        }
    }

    #[test]
    fn grouped_and_flat_knobs_configure_the_same_builder() {
        let adaptive = AdaptiveConfig::default().chunk_bounds(4, 128).target_drain_ms(2.0);
        let flat = MonitorBuilder::new(EngineKind::Mrio)
            .lambda(0.001)
            .shards(2)
            .batch_size(64)
            .pipeline_window(2)
            .adaptive_batching(adaptive)
            .compact_at(0.3)
            .doc_pruning(DocPruning::On)
            .postings_storage(PostingsStorage::Paged)
            .page_budget(4096);
        let grouped = MonitorBuilder::new(EngineKind::Mrio)
            .lambda(0.001)
            .shards(2)
            .ingest(IngestConfig::default().batch_size(64).pipeline_window(2).adaptive(adaptive))
            .index(
                IndexConfig::default()
                    .storage(StorageConfig {
                        storage: PostingsStorage::Paged,
                        page_budget_bytes: 4096,
                        spill_dir: None,
                    })
                    .compaction_threshold(0.3)
                    .doc_pruning(DocPruning::On),
            );
        assert_eq!(flat, grouped);
    }

    #[test]
    fn adaptive_batching_reaches_both_sharded_front_ends() {
        use ctk_common::{QuerySpec, TermId};
        let batch: Vec<_> = (0..20u64)
            .map(|i| (vec![(TermId((i % 4) as u32), 1.0 / (i + 1) as f32)], i as f64))
            .collect();
        let mut oracle = MonitorBuilder::new(EngineKind::Mrio).lambda(0.001).build();
        let q = oracle.register(QuerySpec::uniform(&[TermId(1), TermId(2)], 3).unwrap());
        oracle.publish_batch(batch.clone());
        for mode in ShardingMode::ALL {
            let mut m = MonitorBuilder::new(EngineKind::Mrio)
                .lambda(0.001)
                .shards(2)
                .sharding(mode)
                .adaptive_batching(AdaptiveConfig::default().chunk_bounds(1, 4))
                .build();
            let q2 = m.register(QuerySpec::uniform(&[TermId(1), TermId(2)], 3).unwrap());
            m.publish_batch(batch.clone());
            assert_eq!(m.results(q2), oracle.results(q), "{mode}");
        }
    }

    #[test]
    fn sharding_mode_names_round_trip() {
        for mode in ShardingMode::ALL {
            assert_eq!(mode.name().parse::<ShardingMode>().unwrap(), mode);
        }
        assert_eq!("documents".parse::<ShardingMode>().unwrap(), ShardingMode::Documents);
        assert!("zigzag".parse::<ShardingMode>().is_err());
    }
}
